//! The assembled uplink: packetizer → WAN channel → depacketizer →
//! feedback, behind one virtual-time pump.
//!
//! [`Uplink`] is the single-stream composition; [`SharedUplink`] wraps it
//! in a facade mutex so a whole fleet of shard threads can ship their
//! kept frames through one bottleneck link — which is exactly the
//! contention the paper's edge→cloud WAN imposes. Two adapters connect
//! it to the rest of the workspace:
//!
//! * [`SharedUplink::keep_sink`] produces a [`sieve_fleet::KeepSink`]
//!   that paces sends by *stream time* (`frame_index / fps`), so the
//!   channel's bandwidth cap and the feedback quanta are driven by the
//!   simulated camera clock, not by how fast the benchmark machine
//!   happens to decode;
//! * [`SharedUplink::live_stage`] produces a [`LiveStage`] for
//!   `run_live_in` pipelines, resolving each block synchronously and
//!   mapping delivery to [`StageResult::Emit`], loss to
//!   [`StageResult::Fail`].

use std::sync::Arc;

use sieve_core::adapt::{wan_signal, WanFeedback, WanSignal};
use sieve_simnet::sync::Mutex;
use sieve_simnet::{LiveStage, SimTime, StageResult, WAN_STAGE};
use sieve_stats::Registry;

use crate::channel::{WanChannel, WanConfig};
use crate::fec::FecConfig;
use crate::feedback::{FeedbackCollector, WanTaps};
use crate::packet::{BlockOutcome, BlockReport, Depacketizer, Packetizer};
use crate::NetError;

/// Everything an uplink needs to know.
#[derive(Debug, Clone)]
pub struct UplinkConfig {
    /// On-wire packet budget, header included.
    pub mtu: usize,
    /// FEC group shape shared by sender and receiver.
    pub fec: FecConfig,
    /// Channel model.
    pub wan: WanConfig,
    /// Width of one feedback accounting quantum.
    pub feedback_quantum_secs: f64,
    /// Cloud→edge report latency.
    pub feedback_delay_secs: f64,
    /// When false, feedback is still *collected* (the counters and the
    /// gauge stay live for the dashboard) but never applied to the
    /// [`WanSignal`] — the feedback-off arm of an A/B.
    pub feedback: bool,
}

impl UplinkConfig {
    /// A reasonable default shape over the given channel: 1200-byte MTU,
    /// 8+2 FEC, half-second feedback quanta at 100 ms report latency.
    pub fn over(wan: WanConfig) -> Self {
        Self {
            mtu: 1200,
            fec: FecConfig::default_on(),
            wan,
            feedback_quantum_secs: 0.5,
            feedback_delay_secs: 0.1,
            feedback: true,
        }
    }
}

/// Aggregate counts for one uplink's lifetime — block ledger on top of
/// the channel's packet ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UplinkCounts {
    pub blocks_sent: u64,
    pub blocks_delivered: u64,
    pub blocks_recovered: u64,
    pub blocks_lost: u64,
    pub packets_sent: u64,
    pub packets_lost: u64,
    pub packets_congestion_dropped: u64,
    pub packets_reordered: u64,
    pub delivered_bytes: u64,
    pub feedback_quanta: u64,
    /// Sum of the control factor sampled at each applied quantum;
    /// `mean_factor()` turns it into the run average.
    pub factor_sum: f64,
}

impl UplinkCounts {
    /// Blocks that reached the cloud usable (delivered or recovered).
    pub fn blocks_usable(&self) -> u64 {
        self.blocks_delivered + self.blocks_recovered
    }

    /// Average WAN control factor over the run (1.0 when no feedback
    /// quantum ever closed).
    pub fn mean_factor(&self) -> f64 {
        if self.feedback_quanta == 0 {
            1.0
        } else {
            self.factor_sum / self.feedback_quanta as f64
        }
    }
}

/// One stream's transport: packetizer, channel, depacketizer and
/// feedback collector marching on a shared virtual clock.
#[derive(Debug)]
pub struct Uplink {
    packetizer: Packetizer,
    channel: WanChannel,
    depacketizer: Depacketizer,
    collector: FeedbackCollector,
    signal: Arc<WanSignal>,
    taps: WanTaps,
    feedback_enabled: bool,
    now: SimTime,
    /// Sent blocks not yet resolved to an outcome. Needed because a block
    /// whose fragments are *all* dropped never reaches the depacketizer —
    /// only the sender can notice it is gone.
    outstanding: std::collections::BTreeSet<u64>,
    blocks_sent: u64,
    blocks_delivered: u64,
    blocks_recovered: u64,
    blocks_lost: u64,
    delivered_bytes: u64,
    feedback_quanta: u64,
    factor_sum: f64,
}

impl Uplink {
    /// Builds an uplink whose `wan.*` instruments land in the
    /// process-global registry — what `fleet_top` watches — and whose
    /// feedback drives the process-global [`wan_signal`].
    pub fn new(cfg: UplinkConfig) -> Result<Self, NetError> {
        Self::with_registry(cfg, sieve_stats::global())
    }

    /// Same, against an explicit registry (benchmarks use a fresh one
    /// per run so A/B arms do not share counters).
    pub fn with_registry(cfg: UplinkConfig, registry: &Arc<Registry>) -> Result<Self, NetError> {
        let taps = WanTaps::register(registry);
        let collector = FeedbackCollector::new(
            taps.clone(),
            cfg.feedback_quantum_secs,
            cfg.feedback_delay_secs,
        );
        Ok(Self {
            packetizer: Packetizer::new(cfg.mtu, cfg.fec, 0)?,
            channel: WanChannel::with_taps(cfg.wan, taps.clone())?,
            depacketizer: Depacketizer::with_taps(cfg.mtu, cfg.fec, taps.clone())?,
            collector,
            signal: wan_signal().clone(),
            taps,
            feedback_enabled: cfg.feedback,
            now: SimTime::ZERO,
            outstanding: std::collections::BTreeSet::new(),
            blocks_sent: 0,
            blocks_delivered: 0,
            blocks_recovered: 0,
            blocks_lost: 0,
            delivered_bytes: 0,
            feedback_quanta: 0,
            factor_sum: 0.0,
        })
    }

    /// Redirects feedback at an uplink-local signal instead of the
    /// process-global one — tests use this to stay isolated.
    pub fn with_signal(mut self, signal: Arc<WanSignal>) -> Self {
        self.signal = signal;
        self
    }

    /// The signal this uplink's feedback drives.
    pub fn signal(&self) -> &Arc<WanSignal> {
        &self.signal
    }

    /// Current virtual time, as advanced by sends.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Ships one block at virtual time `now`; returns every block the
    /// resulting arrivals resolve (not necessarily this one — delivery
    /// lags by the channel latency).
    pub fn send_block_at(&mut self, now: SimTime, payload: &[u8]) -> Vec<BlockReport> {
        self.now = self.now.max(now);
        self.blocks_sent += 1;
        self.taps.blocks_sent.inc();
        let (block_id, packets) = self.packetizer.packetize(payload);
        self.outstanding.insert(block_id);
        for p in packets {
            self.channel.send(self.now, p);
        }
        self.pump()
    }

    /// Advances the receive side to the current virtual time.
    pub fn pump(&mut self) -> Vec<BlockReport> {
        let mut reports = Vec::new();
        for p in self.channel.poll(self.now) {
            reports.extend(self.depacketizer.push(p));
        }
        self.absorb(&reports);
        let dead = self.reap_wholesale_lost();
        self.absorb(&dead);
        reports.extend(dead);
        for fb in self.collector.poll(self.now) {
            self.note_feedback(fb);
        }
        reports
    }

    /// Ends the run: drains the channel, forces every pending block to a
    /// verdict and flushes the partial feedback quantum.
    pub fn finish(&mut self) -> Vec<BlockReport> {
        let mut reports = Vec::new();
        for p in self.channel.drain() {
            reports.extend(self.depacketizer.push(p));
        }
        reports.extend(self.depacketizer.finish());
        self.absorb(&reports);
        let dead = self.reap_wholesale_lost();
        self.absorb(&dead);
        reports.extend(dead);
        for fb in self.collector.flush() {
            self.note_feedback(fb);
        }
        reports
    }

    /// The uplink's block/packet ledger so far.
    pub fn counts(&self) -> UplinkCounts {
        let ch = self.channel.counts();
        UplinkCounts {
            blocks_sent: self.blocks_sent,
            blocks_delivered: self.blocks_delivered,
            blocks_recovered: self.blocks_recovered,
            blocks_lost: self.blocks_lost,
            packets_sent: ch.sent,
            packets_lost: ch.lost,
            packets_congestion_dropped: ch.congestion_dropped,
            packets_reordered: self.depacketizer.reordered(),
            delivered_bytes: self.delivered_bytes,
            feedback_quanta: self.feedback_quanta,
            factor_sum: self.factor_sum,
        }
    }

    /// Declares sent blocks lost once no fragment of theirs is pending at
    /// the receiver or in flight in the channel — the wholesale-drop case
    /// an arrival-driven depacketizer can never see. Runs before feedback
    /// collection so a congestion wipeout registers as unrecoverable loss
    /// within the quantum it happens in, not at the end of the run.
    fn reap_wholesale_lost(&mut self) -> Vec<BlockReport> {
        if self.outstanding.is_empty() {
            return Vec::new();
        }
        let in_flight = self.channel.in_flight_blocks();
        let dead: Vec<u64> = self
            .outstanding
            .iter()
            .copied()
            .filter(|&id| !self.depacketizer.is_pending(0, id) && !in_flight.contains(&(0, id)))
            .collect();
        dead.into_iter()
            .map(|block_id| {
                self.taps.blocks_lost.inc();
                BlockReport {
                    stream: 0,
                    block_id,
                    outcome: BlockOutcome::Lost,
                }
            })
            .collect()
    }

    fn absorb(&mut self, reports: &[BlockReport]) {
        for r in reports {
            self.outstanding.remove(&r.block_id);
            match &r.outcome {
                BlockOutcome::Delivered(p) => {
                    self.blocks_delivered += 1;
                    self.delivered_bytes += p.len() as u64;
                }
                BlockOutcome::Recovered(p) => {
                    self.blocks_recovered += 1;
                    self.delivered_bytes += p.len() as u64;
                }
                BlockOutcome::Lost => self.blocks_lost += 1,
            }
        }
    }

    fn note_feedback(&mut self, fb: WanFeedback) {
        self.feedback_quanta += 1;
        if self.feedback_enabled {
            self.signal.apply(&fb);
        }
        if std::env::var_os("SIEVE_WAN_TRACE").is_some() {
            eprintln!(
                "q{:04} factor={:.3} marked={} cong={} lost={} unrec={} rec={}",
                self.feedback_quanta,
                self.signal.factor(),
                fb.marked,
                fb.congestion_dropped,
                fb.lost,
                fb.unrecoverable,
                fb.recovered
            );
        }
        let factor = self.signal.factor();
        self.factor_sum += factor;
        self.taps
            .target_factor_ppm
            .set((factor * 1e6).round() as u64);
    }
}

/// An [`Uplink`] behind the facade mutex, shareable across shard threads.
#[derive(Debug, Clone)]
pub struct SharedUplink(Arc<Mutex<Uplink>>);

impl SharedUplink {
    pub fn new(uplink: Uplink) -> Self {
        Self(Arc::new(Mutex::new(uplink)))
    }

    /// Runs `f` with the uplink locked.
    pub fn with<R>(&self, f: impl FnOnce(&mut Uplink) -> R) -> R {
        f(&mut self.0.lock())
    }

    /// Ledger snapshot.
    pub fn counts(&self) -> UplinkCounts {
        self.0.lock().counts()
    }

    /// Ends the run across the shared uplink.
    pub fn finish(&self) -> Vec<BlockReport> {
        self.0.lock().finish()
    }

    /// A fleet keep-sink shipping every kept frame's encoded payload,
    /// paced by stream time: frame `i` of an `fps` camera is sent at
    /// virtual second `phase_secs + i / fps`.
    ///
    /// `phase_secs` desynchronizes cameras sharing one uplink. Real
    /// cameras are not frame-locked to each other; without a per-stream
    /// phase, frame `i` of *every* stream lands at the same virtual
    /// instant, and the coincident I-frames at GOP multiples pile into a
    /// burst the bottleneck queue tail-drops mid-block — a synchronization
    /// artifact, not a property of the workload.
    pub fn keep_sink(&self, fps: f64, phase_secs: f64) -> sieve_fleet::KeepSink {
        assert!(fps > 0.0, "keep_sink needs a positive frame rate");
        assert!(phase_secs >= 0.0, "keep_sink phase must be >= 0");
        let shared = self.0.clone();
        Box::new(move |index, _frame, payload| {
            let now = SimTime::from_secs_f64(phase_secs + index as f64 / fps);
            shared.lock().send_block_at(now, payload);
        })
    }

    /// A [`LiveStage`] for `run_live_in` pipelines: each item's payload
    /// crosses the WAN and is resolved synchronously — [`StageResult::Emit`]
    /// with the reassembled bytes on delivery or recovery,
    /// [`StageResult::Fail`] on loss. Items are paced by their `id` at
    /// `items_per_sec`.
    pub fn live_stage(&self, items_per_sec: f64) -> LiveStage {
        assert!(items_per_sec > 0.0, "live_stage needs a positive item rate");
        let shared = self.0.clone();
        LiveStage::compute(WAN_STAGE, move |mut item: sieve_simnet::LiveItem| {
            let mut uplink = shared.lock();
            let now = SimTime::from_secs_f64(item.id as f64 / items_per_sec);
            let block_id = uplink.packetizer_next_block();
            let mut reports = uplink.send_block_at(now, &item.payload);
            // Resolve this block now: advance the clock past the last
            // in-flight arrival, then force a verdict if it is still open.
            while let Some(at) = uplink.channel_earliest_pending() {
                uplink.now = uplink.now.max(at);
                reports.extend(uplink.pump());
            }
            if let Some(report) = uplink.finalize_block(block_id) {
                reports.push(report);
            }
            drop(uplink);
            match reports.into_iter().find(|r| r.block_id == block_id) {
                Some(r) => match r.outcome {
                    BlockOutcome::Delivered(bytes) | BlockOutcome::Recovered(bytes) => {
                        item.payload = bytes;
                        StageResult::Emit(item)
                    }
                    BlockOutcome::Lost => StageResult::Fail,
                },
                None => StageResult::Fail,
            }
        })
    }
}

impl Uplink {
    fn packetizer_next_block(&self) -> u64 {
        self.packetizer.next_block()
    }

    fn channel_earliest_pending(&self) -> Option<SimTime> {
        self.channel.earliest_pending()
    }

    fn finalize_block(&mut self, block_id: u64) -> Option<BlockReport> {
        let report = self.depacketizer.finalize(0, block_id);
        if let Some(r) = &report {
            self.absorb(std::slice::from_ref(r));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize, tag: u8) -> Vec<u8> {
        (0..n).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect()
    }

    fn local(cfg: UplinkConfig) -> Uplink {
        let registry = Arc::new(Registry::new());
        Uplink::with_registry(cfg, &registry)
            .expect("uplink")
            .with_signal(Arc::new(WanSignal::new()))
    }

    #[test]
    fn clean_channel_roundtrips_blocks() {
        let mut up = local(UplinkConfig::over(WanConfig::clean(1)));
        for i in 0..20u64 {
            up.send_block_at(
                SimTime::from_secs_f64(i as f64 * 0.1),
                &block(5000, i as u8),
            );
        }
        up.finish();
        let c = up.counts();
        assert_eq!(c.blocks_sent, 20);
        assert_eq!(c.blocks_usable(), 20);
        assert_eq!(c.blocks_lost, 0);
        assert_eq!(c.delivered_bytes, 20 * 5000);
    }

    #[test]
    fn block_conservation_holds_under_loss() {
        let mut up = local(UplinkConfig::over(WanConfig::paper_wan(42, 0.08)));
        for i in 0..100u64 {
            up.send_block_at(
                SimTime::from_secs_f64(i as f64 / 30.0),
                &block(8000, i as u8),
            );
        }
        up.finish();
        let c = up.counts();
        assert_eq!(c.blocks_sent, 100);
        assert_eq!(
            c.blocks_sent,
            c.blocks_delivered + c.blocks_recovered + c.blocks_lost,
            "every sent block must resolve to exactly one outcome"
        );
        assert!(
            c.blocks_recovered > 0,
            "8% loss with 8+2 FEC should recover blocks"
        );
    }

    #[test]
    fn feedback_throttles_the_shared_signal() {
        let signal = Arc::new(WanSignal::new());
        let mut cfg = UplinkConfig::over(WanConfig::paper_wan(7, 0.0));
        // Overdrive a tiny link so congestion drops dominate.
        cfg.wan.bandwidth_bps = 2e5;
        cfg.wan.queue_bytes = 2 * 1024;
        let registry = Arc::new(Registry::new());
        let mut up = Uplink::with_registry(cfg, &registry)
            .expect("uplink")
            .with_signal(signal.clone());
        for i in 0..200u64 {
            up.send_block_at(
                SimTime::from_secs_f64(i as f64 / 30.0),
                &block(4000, i as u8),
            );
        }
        up.finish();
        assert!(
            signal.factor() < 1.0,
            "sustained congestion must pull the control factor down, got {}",
            signal.factor()
        );
        assert!(up.counts().feedback_quanta > 0);
    }

    #[test]
    fn feedback_off_collects_but_does_not_apply() {
        let signal = Arc::new(WanSignal::new());
        let mut cfg = UplinkConfig::over(WanConfig::paper_wan(7, 0.0));
        cfg.wan.bandwidth_bps = 2e5;
        cfg.wan.queue_bytes = 2 * 1024;
        cfg.feedback = false;
        let registry = Arc::new(Registry::new());
        let mut up = Uplink::with_registry(cfg, &registry)
            .expect("uplink")
            .with_signal(signal.clone());
        for i in 0..200u64 {
            up.send_block_at(
                SimTime::from_secs_f64(i as f64 / 30.0),
                &block(4000, i as u8),
            );
        }
        up.finish();
        assert_eq!(
            signal.factor(),
            1.0,
            "feedback-off must leave the signal alone"
        );
        assert!(
            up.counts().feedback_quanta > 0,
            "quanta still close for the dashboard"
        );
    }

    #[test]
    fn shared_uplink_keep_sink_ships_kept_frames() {
        let registry = Arc::new(Registry::new());
        let uplink = Uplink::with_registry(UplinkConfig::over(WanConfig::clean(3)), &registry)
            .expect("uplink")
            .with_signal(Arc::new(WanSignal::new()));
        let shared = SharedUplink::new(uplink);
        let mut sink = shared.keep_sink(30.0, 0.0);
        let frame = sieve_video::Frame::grey(sieve_video::Resolution::new(16, 16));
        for i in 0..10usize {
            sink(i, &frame, &block(2000, i as u8));
        }
        drop(sink);
        shared.finish();
        let c = shared.counts();
        assert_eq!(c.blocks_sent, 10);
        assert_eq!(c.blocks_usable(), 10);
    }
}
