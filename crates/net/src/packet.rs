//! Block/fragment packetization and out-of-order reassembly.
//!
//! A *block* is one application payload (an encoded frame). The
//! [`Packetizer`] splits it into fixed-MTU fragments, appends FEC parity
//! per [`FecConfig`] group, and stamps every fragment with a 28-byte
//! header. The [`Depacketizer`] reassembles blocks from whatever subset
//! arrives — in any order, with duplicates — and reports one
//! [`BlockOutcome`] per block:
//!
//! * [`BlockOutcome::Delivered`] — every data fragment arrived;
//! * [`BlockOutcome::Recovered`] — data was missing but every FEC group
//!   had enough surviving parity to rebuild it, bit-exact;
//! * [`BlockOutcome::Lost`] — some group lost more fragments than its
//!   parity budget; the block is reported lost, never as corrupt bytes.
//!
//! Blocks resolve either eagerly (the moment enough fragments are in) or
//! when they age past the reassembly *horizon*: once packets for block
//! `id + horizon` show up on a stream, block `id` is forced to a verdict.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::fec::{self, FecConfig};
use crate::feedback::WanTaps;
use crate::NetError;

/// Fragment header magic: `0x5E` ("SiEVE") + layout version 1.
pub const MAGIC: [u8; 2] = [0x5E, 0x01];

/// Serialized size of a [`PacketHeader`] on the wire.
pub const HEADER_BYTES: usize = 28;

/// Per-fragment wire header.
///
/// `frag_index < data_frags` marks a data fragment; indices at and above
/// `data_frags` are FEC parity, `group_parity` per group in group order.
/// `seq` increases by one per packet *sent* on the stream (data and
/// parity alike) and is what the receiver uses to count reordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketHeader {
    /// Fleet stream (camera) the block belongs to.
    pub stream: u16,
    /// Monotone per-stream block counter.
    pub block_id: u64,
    /// Monotone per-stream send counter, across blocks.
    pub seq: u64,
    /// Fragment position: data first, then parity.
    pub frag_index: u16,
    /// Number of *data* fragments in the block.
    pub data_frags: u16,
    /// Exact byte length of the original block payload.
    pub block_len: u32,
}

impl PacketHeader {
    /// Serializes to the fixed [`HEADER_BYTES`] layout (big-endian).
    pub fn to_bytes(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..2].copy_from_slice(&MAGIC);
        out[2..4].copy_from_slice(&self.stream.to_be_bytes());
        out[4..12].copy_from_slice(&self.block_id.to_be_bytes());
        out[12..20].copy_from_slice(&self.seq.to_be_bytes());
        out[20..22].copy_from_slice(&self.frag_index.to_be_bytes());
        out[22..24].copy_from_slice(&self.data_frags.to_be_bytes());
        out[24..28].copy_from_slice(&self.block_len.to_be_bytes());
        out
    }

    /// Parses a header back out of a wire buffer.
    pub fn parse(buf: &[u8]) -> Result<Self, NetError> {
        if buf.len() < HEADER_BYTES {
            return Err(NetError::malformed(format!(
                "{} bytes is shorter than the {HEADER_BYTES}-byte header",
                buf.len()
            )));
        }
        if buf[0..2] != MAGIC {
            return Err(NetError::malformed(format!(
                "bad magic {:02x}{:02x}",
                buf[0], buf[1]
            )));
        }
        fn word<const N: usize>(buf: &[u8], at: usize) -> [u8; N] {
            let mut out = [0u8; N];
            out.copy_from_slice(&buf[at..at + N]);
            out
        }
        Ok(Self {
            stream: u16::from_be_bytes(word(buf, 2)),
            block_id: u64::from_be_bytes(word(buf, 4)),
            seq: u64::from_be_bytes(word(buf, 12)),
            frag_index: u16::from_be_bytes(word(buf, 20)),
            data_frags: u16::from_be_bytes(word(buf, 22)),
            block_len: u32::from_be_bytes(word(buf, 24)),
        })
    }
}

/// One fragment in flight: header plus fragment payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub header: PacketHeader,
    pub payload: Vec<u8>,
}

impl Packet {
    /// Bytes this packet occupies on the wire — what the channel's
    /// bandwidth cap charges for.
    pub fn wire_len(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }
}

/// Splits blocks into MTU-sized fragments and appends FEC parity.
#[derive(Debug)]
pub struct Packetizer {
    mtu: usize,
    fec: FecConfig,
    stream: u16,
    next_block: u64,
    next_seq: u64,
}

impl Packetizer {
    /// `mtu` is the full on-wire packet budget, header included.
    pub fn new(mtu: usize, fec: FecConfig, stream: u16) -> Result<Self, NetError> {
        if mtu <= HEADER_BYTES {
            return Err(NetError::config(format!(
                "mtu {mtu} leaves no room after the {HEADER_BYTES}-byte header"
            )));
        }
        Ok(Self {
            mtu,
            fec,
            stream,
            next_block: 0,
            next_seq: 0,
        })
    }

    /// Payload bytes that fit in one fragment.
    pub fn frag_payload(&self) -> usize {
        self.mtu - HEADER_BYTES
    }

    /// The id the next call to [`packetize`](Self::packetize) will use.
    pub fn next_block(&self) -> u64 {
        self.next_block
    }

    /// Packetizes one block; returns its id and the fragments in send
    /// order (data first, then per-group parity).
    pub fn packetize(&mut self, block: &[u8]) -> (u64, Vec<Packet>) {
        let block_id = self.next_block;
        self.next_block += 1;
        let fp = self.frag_payload();
        let data_frags = block.len().div_ceil(fp).max(1);
        debug_assert!(
            data_frags <= u16::MAX as usize,
            "block too large for u16 fragment index"
        );

        let mut packets = Vec::with_capacity(data_frags);
        for (i, chunk) in block.chunks(fp).enumerate() {
            packets.push(self.stamp(
                block_id,
                i as u16,
                data_frags as u16,
                block.len() as u32,
                chunk.to_vec(),
            ));
        }
        if block.is_empty() {
            // An empty block still ships one empty data fragment so the
            // receiver sees the block exist and can report on it.
            packets.push(self.stamp(block_id, 0, 1, 0, Vec::new()));
        }

        if self.fec.group_parity > 0 {
            let k = self.fec.group_data;
            let r = self.fec.group_parity;
            let mut parity_index = data_frags as u16;
            let mut parity_packets = Vec::new();
            for group in packets.chunks(k) {
                let refs: Vec<&[u8]> = group.iter().map(|p| p.payload.as_slice()).collect();
                for parity in fec::encode_group(&refs, r) {
                    parity_packets.push(self.stamp(
                        block_id,
                        parity_index,
                        data_frags as u16,
                        block.len() as u32,
                        parity,
                    ));
                    parity_index += 1;
                }
            }
            packets.extend(parity_packets);
        }
        (block_id, packets)
    }

    fn stamp(
        &mut self,
        block_id: u64,
        frag_index: u16,
        data_frags: u16,
        block_len: u32,
        payload: Vec<u8>,
    ) -> Packet {
        let seq = self.next_seq;
        self.next_seq += 1;
        Packet {
            header: PacketHeader {
                stream: self.stream,
                block_id,
                seq,
                frag_index,
                data_frags,
                block_len,
            },
            payload,
        }
    }
}

/// Terminal verdict for one block at the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockOutcome {
    /// All data fragments arrived; payload is the original bytes.
    Delivered(Vec<u8>),
    /// Data was missing but FEC rebuilt it; payload is bit-exact.
    Recovered(Vec<u8>),
    /// More losses than parity in at least one group.
    Lost,
}

impl BlockOutcome {
    /// The reassembled payload, when there is one.
    pub fn payload(&self) -> Option<&[u8]> {
        match self {
            Self::Delivered(p) | Self::Recovered(p) => Some(p),
            Self::Lost => None,
        }
    }
}

/// One resolved block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockReport {
    pub stream: u16,
    pub block_id: u64,
    pub outcome: BlockOutcome,
}

#[derive(Debug)]
struct PendingBlock {
    data: Vec<Option<Vec<u8>>>,
    parity: Vec<Option<Vec<u8>>>,
    block_len: u32,
}

impl PendingBlock {
    fn new(data_frags: usize, parity_frags: usize, block_len: u32) -> Self {
        Self {
            data: vec![None; data_frags],
            parity: vec![None; parity_frags],
            block_len,
        }
    }
}

/// Reassembles blocks from fragments arriving in any order.
#[derive(Debug)]
pub struct Depacketizer {
    frag_payload: usize,
    fec: FecConfig,
    horizon: u64,
    pending: BTreeMap<(u16, u64), PendingBlock>,
    /// Block ids already resolved, kept within the horizon window so
    /// stragglers and duplicates for a settled block are dropped silently.
    resolved: BTreeMap<u16, BTreeSet<u64>>,
    /// Low-water mark per stream: every id below it is treated as settled
    /// forever, so pruning [`Self::resolved`] can never let a very late
    /// straggler (e.g. one queued behind a full congestion backlog)
    /// resurrect — and double-resolve — an already-settled block.
    settled_floor: BTreeMap<u16, u64>,
    newest: BTreeMap<u16, u64>,
    highest_seq: BTreeMap<u16, u64>,
    reordered: u64,
    taps: Option<WanTaps>,
}

/// Blocks a stream may keep pending before the oldest is forced to a
/// verdict. Generous relative to the channel's reorder bound so a late
/// fragment still finds its block waiting.
pub const DEFAULT_HORIZON: u64 = 8;

impl Depacketizer {
    /// `mtu` and `fec` must match the sender's — the fragment payload
    /// size is shared configuration, not derivable from the wire.
    pub fn new(mtu: usize, fec: FecConfig) -> Result<Self, NetError> {
        if mtu <= HEADER_BYTES {
            return Err(NetError::config(format!(
                "mtu {mtu} leaves no room after the {HEADER_BYTES}-byte header"
            )));
        }
        Ok(Self {
            frag_payload: mtu - HEADER_BYTES,
            fec,
            horizon: DEFAULT_HORIZON,
            pending: BTreeMap::new(),
            resolved: BTreeMap::new(),
            settled_floor: BTreeMap::new(),
            newest: BTreeMap::new(),
            highest_seq: BTreeMap::new(),
            reordered: 0,
            taps: None,
        })
    }

    /// Wires the `wan.*` registry instruments into the reassembly path.
    pub fn with_taps(mtu: usize, fec: FecConfig, taps: WanTaps) -> Result<Self, NetError> {
        let mut d = Self::new(mtu, fec)?;
        d.taps = Some(taps);
        Ok(d)
    }

    /// Overrides the reassembly horizon (in blocks, per stream).
    pub fn set_horizon(&mut self, horizon: u64) {
        self.horizon = horizon.max(1);
    }

    /// Packets seen out of send order so far.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Blocks still waiting for fragments.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// True while at least one fragment of the block has arrived and the
    /// block has not yet resolved.
    pub fn is_pending(&self, stream: u16, block_id: u64) -> bool {
        self.pending.contains_key(&(stream, block_id))
    }

    /// Feeds one arrived packet; returns every block this arrival
    /// resolves — the block it completes, plus any block it ages out.
    pub fn push(&mut self, packet: Packet) -> Vec<BlockReport> {
        let h = packet.header;
        if let Some(t) = &self.taps {
            t.packets_delivered.inc();
        }
        match self.highest_seq.get(&h.stream) {
            Some(&hi) if h.seq < hi => {
                self.reordered += 1;
                if let Some(t) = &self.taps {
                    t.packets_reordered.inc();
                }
            }
            Some(&hi) => {
                self.highest_seq.insert(h.stream, hi.max(h.seq));
            }
            None => {
                self.highest_seq.insert(h.stream, h.seq);
            }
        }

        let mut reports = Vec::new();
        let settled = h.block_id < self.settled_floor.get(&h.stream).copied().unwrap_or(0)
            || self
                .resolved
                .get(&h.stream)
                .is_some_and(|set| set.contains(&h.block_id));
        if settled {
            return reports; // straggler for a block already settled
        }

        let data_frags = h.data_frags as usize;
        let groups = data_frags.div_ceil(self.fec.group_data.max(1));
        let parity_frags = groups * self.fec.group_parity;
        let entry = self
            .pending
            .entry((h.stream, h.block_id))
            .or_insert_with(|| PendingBlock::new(data_frags, parity_frags, h.block_len));

        let idx = h.frag_index as usize;
        if idx < data_frags {
            if entry.data[idx].is_none() {
                entry.data[idx] = Some(packet.payload);
            }
        } else if idx - data_frags < parity_frags {
            let p = idx - data_frags;
            if entry.parity[p].is_none() {
                entry.parity[p] = Some(packet.payload);
            }
        }
        // A frag_index beyond the parity range is a malformed straggler;
        // it was counted as delivered and is otherwise ignored.

        if let Some(report) = self.try_resolve(h.stream, h.block_id) {
            reports.push(report);
        }

        let newest = self
            .newest
            .entry(h.stream)
            .and_modify(|n| *n = (*n).max(h.block_id))
            .or_insert(h.block_id);
        let newest = *newest;
        let expired: Vec<u64> = self
            .pending
            .range((h.stream, 0)..=(h.stream, u64::MAX))
            .map(|((_, id), _)| *id)
            .filter(|id| id + self.horizon < newest)
            .collect();
        for id in expired {
            reports.push(self.force_resolve(h.stream, id));
        }
        reports
    }

    /// Forces a verdict on one block now — used by synchronous adapters
    /// that resolve each block before the next is sent.
    pub fn finalize(&mut self, stream: u16, block_id: u64) -> Option<BlockReport> {
        if self.pending.contains_key(&(stream, block_id)) {
            Some(self.force_resolve(stream, block_id))
        } else {
            None
        }
    }

    /// Forces a verdict on everything still pending.
    pub fn finish(&mut self) -> Vec<BlockReport> {
        let keys: Vec<(u16, u64)> = self.pending.keys().copied().collect();
        keys.into_iter()
            .map(|(s, id)| self.force_resolve(s, id))
            .collect()
    }

    /// Resolves the block if every data fragment is in; leaves it pending
    /// otherwise. Recovery is deliberately *lazy* — jitter routinely lands
    /// parity ahead of the last data fragment, and recovering while the
    /// data is still in flight would misreport a healthy channel as lossy.
    /// Parity is only spent at [`finalize`](Self::finalize) / horizon
    /// expiry, when waiting is no longer an option.
    fn try_resolve(&mut self, stream: u16, block_id: u64) -> Option<BlockReport> {
        let complete = self
            .pending
            .get(&(stream, block_id))
            .is_some_and(|entry| entry.data.iter().all(Option::is_some));
        if !complete {
            return None;
        }
        let entry = self.pending.remove(&(stream, block_id))?;
        let outcome = BlockOutcome::Delivered(assemble(&entry));
        Some(self.settle(stream, block_id, outcome))
    }

    /// Resolves the block with whatever is present: recovery if possible,
    /// otherwise [`BlockOutcome::Lost`].
    fn force_resolve(&mut self, stream: u16, block_id: u64) -> BlockReport {
        // lint:allow(no-unwrap): every caller checked membership in `pending` under this borrow
        let mut entry = self
            .pending
            .remove(&(stream, block_id))
            .expect("checked by caller");
        let outcome = if entry.data.iter().all(Option::is_some) {
            BlockOutcome::Delivered(assemble(&entry))
        } else if self.fec.group_parity > 0 && self.recoverable(&entry) {
            self.recover(&mut entry)
        } else {
            BlockOutcome::Lost
        };
        self.settle(stream, block_id, outcome)
    }

    /// True when every group's losses fit inside its surviving parity.
    fn recoverable(&self, entry: &PendingBlock) -> bool {
        let k = self.fec.group_data;
        let r = self.fec.group_parity;
        entry.data.chunks(k).enumerate().all(|(g, group)| {
            let missing = group.iter().filter(|d| d.is_none()).count();
            let parity_have = entry.parity[g * r..(g + 1) * r]
                .iter()
                .filter(|p| p.is_some())
                .count();
            missing <= parity_have
        })
    }

    /// Runs per-group recovery; downgrades to [`BlockOutcome::Lost`] if
    /// the solver reports the group unrecoverable after all.
    fn recover(&self, entry: &mut PendingBlock) -> BlockOutcome {
        let k = self.fec.group_data;
        let r = self.fec.group_parity;
        let groups = entry.data.len().div_ceil(k);
        let mut recovered_frags = 0usize;
        for g in 0..groups {
            let lo = g * k;
            let hi = (lo + k).min(entry.data.len());
            // Every data fragment but a short tail is full-size; the
            // group-local fragment length is the max present length, with
            // the shared frag_payload as the upper bound.
            let frag_len = entry.data[lo..hi]
                .iter()
                .flatten()
                .chain(entry.parity[g * r..(g + 1) * r].iter().flatten())
                .map(Vec::len)
                .max()
                .unwrap_or(self.frag_payload);
            let group = &mut entry.data[lo..hi];
            let parity = &entry.parity[g * r..(g + 1) * r];
            match fec::recover_group(group, parity, frag_len) {
                Ok(n) => recovered_frags += n,
                Err(_) => return BlockOutcome::Lost,
            }
        }
        let bytes = assemble(entry);
        if recovered_frags == 0 {
            BlockOutcome::Delivered(bytes)
        } else {
            if let Some(t) = &self.taps {
                t.frags_recovered.add(recovered_frags as u64);
            }
            BlockOutcome::Recovered(bytes)
        }
    }

    fn settle(&mut self, stream: u16, block_id: u64, outcome: BlockOutcome) -> BlockReport {
        if let Some(t) = &self.taps {
            match &outcome {
                BlockOutcome::Delivered(p) => {
                    t.blocks_delivered.inc();
                    t.delivered_bytes.add(p.len() as u64);
                }
                BlockOutcome::Recovered(p) => {
                    t.blocks_recovered.inc();
                    t.delivered_bytes.add(p.len() as u64);
                }
                BlockOutcome::Lost => t.blocks_lost.inc(),
            }
        }
        let set = self.resolved.entry(stream).or_default();
        set.insert(block_id);
        // Prune the resolved set to the horizon window so it stays
        // O(horizon); the floor remembers what was pruned, so stragglers
        // below it still read as settled.
        let newest = self.newest.get(&stream).copied().unwrap_or(block_id);
        let keep_from = newest.saturating_sub(self.horizon * 2);
        set.retain(|id| *id >= keep_from);
        let floor = self.settled_floor.entry(stream).or_insert(0);
        *floor = (*floor).max(keep_from);
        BlockReport {
            stream,
            block_id,
            outcome,
        }
    }
}

/// Concatenates data fragments and truncates to the declared block
/// length — recovered tail fragments carry FEC zero-padding past the end.
fn assemble(entry: &PendingBlock) -> Vec<u8> {
    let mut out = Vec::with_capacity(entry.block_len as usize);
    for frag in entry.data.iter().flatten() {
        out.extend_from_slice(frag);
    }
    out.truncate(entry.block_len as usize);
    out
}

/// Convenience used by tests and the uplink: run `packets` through a
/// lossless path and return the reports in resolution order.
pub fn roundtrip(
    depacketizer: &mut Depacketizer,
    packets: impl IntoIterator<Item = Packet>,
) -> VecDeque<BlockReport> {
    let mut out = VecDeque::new();
    for p in packets {
        out.extend(depacketizer.push(p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(mtu: usize, fec: FecConfig) -> (Packetizer, Depacketizer) {
        (
            Packetizer::new(mtu, fec, 3).expect("packetizer"),
            Depacketizer::new(mtu, fec).expect("depacketizer"),
        )
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 % 251) as u8).collect()
    }

    #[test]
    fn header_roundtrips_and_rejects_garbage() {
        let h = PacketHeader {
            stream: 7,
            block_id: 0x0123_4567_89ab_cdef,
            seq: 42,
            frag_index: 9,
            data_frags: 12,
            block_len: 4096,
        };
        let bytes = h.to_bytes();
        assert_eq!(PacketHeader::parse(&bytes).expect("parse"), h);
        assert!(matches!(
            PacketHeader::parse(&bytes[..10]),
            Err(NetError::MalformedPacket(_))
        ));
        let mut bad = bytes;
        bad[0] = 0xff;
        assert!(matches!(
            PacketHeader::parse(&bad),
            Err(NetError::MalformedPacket(_))
        ));
    }

    #[test]
    fn lossless_in_order_delivers() {
        let (mut tx, mut rx) = mk(256, FecConfig::default_on());
        let block = payload(2000);
        let (id, pkts) = tx.packetize(&block);
        let reports = roundtrip(&mut rx, pkts);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].block_id, id);
        assert_eq!(reports[0].outcome, BlockOutcome::Delivered(block));
    }

    #[test]
    fn loss_within_parity_budget_recovers_bit_exact() {
        let fec = FecConfig::new(4, 2).expect("fec");
        let (mut tx, mut rx) = mk(128, fec);
        let block = payload(900);
        let (_, mut pkts) = tx.packetize(&block);
        // Drop two data fragments out of the first group.
        pkts.remove(1);
        pkts.remove(0);
        let mut reports = roundtrip(&mut rx, pkts);
        assert!(
            reports.is_empty(),
            "recovery is lazy: nothing resolves early"
        );
        reports.extend(rx.finish());
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome, BlockOutcome::Recovered(block));
    }

    #[test]
    fn loss_beyond_parity_budget_is_lost_not_corrupt() {
        let fec = FecConfig::new(4, 1).expect("fec");
        let (mut tx, mut rx) = mk(128, fec);
        let block = payload(900);
        let (_, pkts) = tx.packetize(&block);
        // Drop two data fragments from the same group: beyond R=1.
        let kept: Vec<Packet> = pkts
            .into_iter()
            .filter(|p| p.header.frag_index != 0 && p.header.frag_index != 1)
            .collect();
        let mut rx_reports = roundtrip(&mut rx, kept);
        rx_reports.extend(rx.finish());
        assert_eq!(rx_reports.len(), 1);
        assert_eq!(rx_reports[0].outcome, BlockOutcome::Lost);
    }

    #[test]
    fn out_of_order_arrival_reassembles_and_counts_reorder() {
        let (mut tx, mut rx) = mk(200, FecConfig::off());
        let block = payload(700);
        let (_, mut pkts) = tx.packetize(&block);
        pkts.reverse();
        let reports = roundtrip(&mut rx, pkts);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome, BlockOutcome::Delivered(block));
        assert!(
            rx.reordered() > 0,
            "reversed arrival must count as reordered"
        );
    }

    #[test]
    fn duplicates_are_idempotent() {
        let (mut tx, mut rx) = mk(200, FecConfig::default_on());
        let block = payload(700);
        let (_, pkts) = tx.packetize(&block);
        let doubled: Vec<Packet> = pkts.clone().into_iter().chain(pkts).collect();
        let reports = roundtrip(&mut rx, doubled);
        assert_eq!(reports.len(), 1, "a settled block ignores stragglers");
        assert_eq!(reports[0].outcome, BlockOutcome::Delivered(block));
    }

    #[test]
    fn horizon_forces_old_blocks_to_a_verdict() {
        let (mut tx, mut rx) = mk(200, FecConfig::off());
        rx.set_horizon(2);
        let first = payload(500);
        let (first_id, mut first_pkts) = tx.packetize(&first);
        first_pkts.pop(); // hold back the tail fragment forever
        let mut reports = roundtrip(&mut rx, first_pkts);
        assert!(reports.is_empty());
        for _ in 0..4 {
            let (_, pkts) = tx.packetize(&payload(500));
            reports.extend(roundtrip(&mut rx, pkts));
        }
        let forced = reports
            .iter()
            .find(|r| r.block_id == first_id)
            .expect("old block must be forced out by the horizon");
        assert_eq!(forced.outcome, BlockOutcome::Lost);
    }

    #[test]
    fn empty_block_still_reports() {
        let (mut tx, mut rx) = mk(200, FecConfig::default_on());
        let (id, pkts) = tx.packetize(&[]);
        assert!(!pkts.is_empty());
        let reports = roundtrip(&mut rx, pkts);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].block_id, id);
        assert_eq!(reports[0].outcome, BlockOutcome::Delivered(Vec::new()));
    }
}
