//! The `wan.*` observability instruments and the feedback collector.
//!
//! Observability and control share one substrate here: the counters the
//! operator watches in `fleet_top` under the [`WAN_STAGE`] prefix are the
//! *same* counters the [`FeedbackCollector`] diffs per quantum to build
//! the [`WanFeedback`] the rate controller consumes. There is no second
//! bookkeeping path that can drift from the dashboard.
//!
//! Feedback is not instantaneous: each closed quantum is scheduled for
//! delivery one `delay` later, modelling the cloud→edge report latency,
//! and only surfaces from [`FeedbackCollector::poll`] once virtual time
//! reaches it.

use std::collections::VecDeque;
use std::sync::Arc;

use sieve_core::adapt::WanFeedback;
use sieve_simnet::{SimTime, WAN_STAGE};
use sieve_stats::{Counter, Gauge, Registry};

/// `wan.*` instrument handles, registered once per registry and cloned
/// into the channel, the depacketizer and the collector.
#[derive(Debug, Clone)]
pub struct WanTaps {
    pub packets_sent: Arc<Counter>,
    pub packets_lost: Arc<Counter>,
    pub packets_dropped_congestion: Arc<Counter>,
    pub packets_marked: Arc<Counter>,
    pub packets_delivered: Arc<Counter>,
    pub packets_reordered: Arc<Counter>,
    pub blocks_sent: Arc<Counter>,
    pub blocks_delivered: Arc<Counter>,
    pub blocks_recovered: Arc<Counter>,
    pub blocks_lost: Arc<Counter>,
    pub frags_recovered: Arc<Counter>,
    pub delivered_bytes: Arc<Counter>,
    pub feedback_quanta: Arc<Counter>,
    /// Current WAN control factor, in parts-per-million (a gauge cannot
    /// hold a float; 1_000_000 means "no throttle").
    pub target_factor_ppm: Arc<Gauge>,
}

impl WanTaps {
    /// Registers (or re-attaches to) every `wan.*` instrument in
    /// `registry` under the canonical [`WAN_STAGE`] stage name.
    pub fn register(registry: &Arc<Registry>) -> Self {
        let stage = registry.stage(WAN_STAGE);
        Self {
            packets_sent: stage.counter("packets_sent"),
            packets_lost: stage.counter("packets_lost"),
            packets_dropped_congestion: stage.counter("packets_dropped_congestion"),
            packets_marked: stage.counter("packets_marked"),
            packets_delivered: stage.counter("packets_delivered"),
            packets_reordered: stage.counter("packets_reordered"),
            blocks_sent: stage.counter("blocks_sent"),
            blocks_delivered: stage.counter("blocks_delivered"),
            blocks_recovered: stage.counter("blocks_recovered"),
            blocks_lost: stage.counter("blocks_lost"),
            frags_recovered: stage.counter("frags_recovered"),
            delivered_bytes: stage.counter("delivered_bytes"),
            feedback_quanta: stage.counter("feedback_quanta"),
            target_factor_ppm: stage.gauge("target_factor_ppm"),
        }
    }

    /// Registers against the process-global registry — what `fleet_top`
    /// reads.
    pub fn global() -> Self {
        Self::register(sieve_stats::global())
    }

    fn snapshot(&self) -> TapSnapshot {
        TapSnapshot {
            packets_lost: self.packets_lost.get(),
            packets_dropped_congestion: self.packets_dropped_congestion.get(),
            packets_marked: self.packets_marked.get(),
            packets_reordered: self.packets_reordered.get(),
            blocks_recovered: self.blocks_recovered.get(),
            blocks_lost: self.blocks_lost.get(),
            delivered_bytes: self.delivered_bytes.get(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TapSnapshot {
    packets_lost: u64,
    packets_dropped_congestion: u64,
    packets_marked: u64,
    packets_reordered: u64,
    blocks_recovered: u64,
    blocks_lost: u64,
    delivered_bytes: u64,
}

impl TapSnapshot {
    /// The feedback for the interval between `earlier` and `self`.
    fn since(&self, earlier: &TapSnapshot) -> WanFeedback {
        WanFeedback {
            lost: self.packets_lost - earlier.packets_lost,
            congestion_dropped: self.packets_dropped_congestion
                - earlier.packets_dropped_congestion,
            marked: self.packets_marked - earlier.packets_marked,
            reordered: self.packets_reordered - earlier.packets_reordered,
            recovered: self.blocks_recovered - earlier.blocks_recovered,
            unrecoverable: self.blocks_lost - earlier.blocks_lost,
            delivered_bytes: self.delivered_bytes - earlier.delivered_bytes,
        }
    }
}

/// Slices the `wan.*` counter series into per-quantum [`WanFeedback`]
/// reports and delivers each one `delay` after its quantum closes.
#[derive(Debug)]
pub struct FeedbackCollector {
    taps: WanTaps,
    quantum: SimTime,
    delay: SimTime,
    next_close: SimTime,
    last: TapSnapshot,
    pending: VecDeque<(SimTime, WanFeedback)>,
}

impl FeedbackCollector {
    pub fn new(taps: WanTaps, quantum_secs: f64, delay_secs: f64) -> Self {
        let last = taps.snapshot();
        Self {
            taps,
            quantum: SimTime::from_secs_f64(quantum_secs.max(1e-6)),
            delay: SimTime::from_secs_f64(delay_secs.max(0.0)),
            next_close: SimTime::from_secs_f64(quantum_secs.max(1e-6)),
            last,
            pending: VecDeque::new(),
        }
    }

    /// Closes every quantum that has elapsed by `now` and returns the
    /// feedback whose delivery delay has also elapsed.
    pub fn poll(&mut self, now: SimTime) -> Vec<WanFeedback> {
        while self.next_close <= now {
            self.close_quantum(self.next_close);
            self.next_close = self.next_close + self.quantum;
        }
        let mut due = Vec::new();
        while let Some(&(at, fb)) = self.pending.front() {
            if at > now {
                break;
            }
            self.pending.pop_front();
            due.push(fb);
        }
        due
    }

    /// Closes the current partial quantum and returns everything still
    /// pending, delay notwithstanding — end-of-run teardown.
    pub fn flush(&mut self) -> Vec<WanFeedback> {
        self.close_quantum(self.next_close);
        self.pending.drain(..).map(|(_, fb)| fb).collect()
    }

    fn close_quantum(&mut self, closed_at: SimTime) {
        let snap = self.taps.snapshot();
        let fb = snap.since(&self.last);
        self.last = snap;
        self.taps.feedback_quanta.inc();
        self.pending.push_back((closed_at + self.delay, fb));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quanta_diff_the_registry_counters() {
        let registry = Arc::new(Registry::new());
        let taps = WanTaps::register(&registry);
        let mut fc = FeedbackCollector::new(taps.clone(), 1.0, 0.0);

        taps.packets_lost.add(3);
        taps.blocks_recovered.inc();
        taps.delivered_bytes.add(1000);
        let fb = fc.poll(SimTime::from_secs_f64(1.0));
        assert_eq!(fb.len(), 1);
        assert_eq!(
            fb[0],
            WanFeedback {
                lost: 3,
                congestion_dropped: 0,
                marked: 0,
                reordered: 0,
                recovered: 1,
                unrecoverable: 0,
                delivered_bytes: 1000
            }
        );

        // Second quantum only sees the new increments, and congestion
        // drops arrive on their own axis — they demand back-off, random
        // loss does not.
        taps.packets_dropped_congestion.add(2);
        taps.packets_marked.add(7);
        let fb = fc.poll(SimTime::from_secs_f64(2.0));
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].lost, 0);
        assert_eq!(fb[0].congestion_dropped, 2);
        assert_eq!(fb[0].marked, 7);
        assert_eq!(fb[0].delivered_bytes, 0);
        assert_eq!(taps.feedback_quanta.get(), 2);
    }

    #[test]
    fn delivery_is_delayed_by_the_configured_latency() {
        let registry = Arc::new(Registry::new());
        let taps = WanTaps::register(&registry);
        let mut fc = FeedbackCollector::new(taps.clone(), 1.0, 0.5);
        taps.packets_lost.inc();
        // Quantum closes at t=1 but the report only lands at t=1.5.
        assert!(fc.poll(SimTime::from_secs_f64(1.2)).is_empty());
        let fb = fc.poll(SimTime::from_secs_f64(1.5));
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].lost, 1);
    }

    #[test]
    fn flush_closes_the_partial_quantum() {
        let registry = Arc::new(Registry::new());
        let taps = WanTaps::register(&registry);
        let mut fc = FeedbackCollector::new(taps.clone(), 10.0, 5.0);
        taps.blocks_lost.inc();
        let fb = fc.flush();
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].unrecoverable, 1);
    }

    #[test]
    fn taps_register_under_the_wan_stage() {
        let registry = Arc::new(Registry::new());
        let taps = WanTaps::register(&registry);
        taps.packets_sent.add(5);
        taps.target_factor_ppm.set(1_000_000);
        let sample = registry.sample();
        assert_eq!(
            sample.counters.get(&format!("{WAN_STAGE}.packets_sent")),
            Some(&5),
            "wan.packets_sent must appear in the registry sample"
        );
        assert_eq!(sample.gauges.get("wan.target_factor_ppm"), Some(&1_000_000));
    }
}
