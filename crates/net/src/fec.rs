//! Erasure coding over fragment groups: GF(256) parity that recovers
//! **any** `R` lost fragments per group.
//!
//! Each block's data fragments are split into groups of up to `K`
//! ([`FecConfig::group_data`]); every group gets `R`
//! ([`FecConfig::group_parity`]) parity fragments. The parity rows are a
//! Cauchy matrix over GF(256) — `coef(r, j) = inv(x_r ⊕ y_j)` with the
//! `x` and `y` node sets disjoint — so every square submatrix is
//! invertible and *any* combination of up to `R` missing fragments in a
//! group is recoverable by Gaussian elimination, not just the patterns a
//! plain XOR parity happens to cover. (XOR is the field's addition: with
//! `R = 1` the decode degenerates to the familiar XOR chain.)
//!
//! The arithmetic is table-driven (one 512-byte exp table, one 256-byte
//! log table, built once) and all fragment operations are byte-parallel
//! loops over equal-length slices.

use std::sync::OnceLock;

use crate::NetError;

/// The FEC shape shared by a [`crate::Packetizer`] / [`crate::Depacketizer`]
/// pair: `group_data` (K) data fragments per group, `group_parity` (R)
/// parity fragments appended to each group. `group_parity == 0` turns FEC
/// off (no parity packets, no recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct FecConfig {
    /// Data fragments per FEC group (K).
    pub group_data: usize,
    /// Parity fragments per FEC group (R). Zero disables FEC.
    pub group_parity: usize,
}

impl FecConfig {
    /// A `(K, R)` configuration.
    ///
    /// # Errors
    ///
    /// `K` must be at least 1 and `K + R` at most 255 (the Cauchy node
    /// sets live in GF(256) and must stay disjoint).
    pub fn new(group_data: usize, group_parity: usize) -> Result<Self, NetError> {
        if group_data == 0 {
            return Err(NetError::config("FEC group needs at least 1 data fragment"));
        }
        if group_data + group_parity > 255 {
            return Err(NetError::config(format!(
                "FEC group of {group_data}+{group_parity} fragments exceeds GF(256)"
            )));
        }
        Ok(Self {
            group_data,
            group_parity,
        })
    }

    /// FEC disabled: data fragments only.
    pub fn off() -> Self {
        Self {
            group_data: 8,
            group_parity: 0,
        }
    }

    /// The default shape: groups of 8 data fragments, 2 parity each — 25%
    /// overhead, any 2 losses per group repaired.
    pub fn default_on() -> Self {
        Self {
            group_data: 8,
            group_parity: 2,
        }
    }
}

/// exp table doubled so `exp[log a + log b]` never needs a modulo, plus
/// the log table (`log[0]` unused).
fn tables() -> &'static ([u8; 512], [u8; 256]) {
    static TABLES: OnceLock<([u8; 512], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d; // the AES-adjacent primitive polynomial
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        (exp, log)
    })
}

/// GF(256) product.
fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (exp, log) = tables();
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

/// GF(256) inverse of a non-zero element.
fn gf_inv(a: u8) -> u8 {
    debug_assert_ne!(a, 0, "zero has no inverse");
    let (exp, log) = tables();
    exp[255 - log[a as usize] as usize]
}

/// The Cauchy coefficient of parity row `r` over data column `j`:
/// `inv(x_r ⊕ y_j)` with `x_r = r` and `y_j = 255 - j`. The node sets are
/// disjoint for any valid [`FecConfig`], so the inverse always exists and
/// every square submatrix of the coefficient matrix is invertible — the
/// property that makes "any ≤R losses" recoverable.
fn coef(r: usize, j: usize) -> u8 {
    gf_inv((r as u8) ^ (255 - j as u8))
}

/// `dst ^= c · src`, byte-parallel. Slices must be equal length.
fn mul_acc(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let (exp, log) = tables();
    let lc = log[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= exp[lc + log[*s as usize] as usize];
        }
    }
}

/// Encodes `parity_count` parity fragments over one group of data
/// fragments. Fragments shorter than the longest are treated as
/// zero-padded; every parity fragment has the group's maximum length.
pub fn encode_group(data: &[&[u8]], parity_count: usize) -> Vec<Vec<u8>> {
    let frag_len = data.iter().map(|d| d.len()).max().unwrap_or(0);
    (0..parity_count)
        .map(|r| {
            let mut p = vec![0u8; frag_len];
            for (j, frag) in data.iter().enumerate() {
                mul_acc(&mut p[..frag.len()], coef(r, j), frag);
            }
            p
        })
        .collect()
}

/// Recovers the missing data fragments of one group in place.
///
/// `data` holds the group's data slots (`None` = lost); `parity` its
/// parity slots in row order (`None` = lost). Present fragments may be
/// shorter than `frag_len` (the tail fragment) — they are treated as
/// zero-padded; recovered fragments come back at full `frag_len` (callers
/// truncate using the block length). Returns the number of fragments
/// recovered (0 when nothing was missing).
///
/// # Errors
///
/// [`NetError::Unrecoverable`] when more data fragments are missing than
/// parity fragments survive.
pub fn recover_group(
    data: &mut [Option<Vec<u8>>],
    parity: &[Option<Vec<u8>>],
    frag_len: usize,
) -> Result<usize, NetError> {
    let missing: Vec<usize> = (0..data.len()).filter(|&j| data[j].is_none()).collect();
    if missing.is_empty() {
        return Ok(0);
    }
    let rows: Vec<usize> = (0..parity.len())
        .filter(|&r| parity[r].is_some())
        .take(missing.len())
        .collect();
    if rows.len() < missing.len() {
        return Err(NetError::Unrecoverable {
            missing: missing.len(),
            parity: rows.len(),
        });
    }
    let m = missing.len();
    // Augmented system rows: the M×M Cauchy submatrix over the missing
    // columns, each with its syndrome (parity ⊕ known-data contributions).
    let mut matrix: Vec<Vec<u8>> = Vec::with_capacity(m);
    let mut rhs: Vec<Vec<u8>> = Vec::with_capacity(m);
    for &r in &rows {
        matrix.push(missing.iter().map(|&j| coef(r, j)).collect());
        let mut s = vec![0u8; frag_len];
        if let Some(p) = &parity[r] {
            s[..p.len()].copy_from_slice(p);
        }
        for (j, frag) in data.iter().enumerate() {
            if let Some(frag) = frag {
                mul_acc(&mut s[..frag.len()], coef(r, j), frag);
            }
        }
        rhs.push(s);
    }
    // Gaussian elimination; the Cauchy property guarantees a pivot, but a
    // typed error beats a panic if an impossible state ever arrives.
    for col in 0..m {
        let pivot = (col..m)
            .find(|&row| matrix[row][col] != 0)
            .ok_or(NetError::SingularSystem)?;
        matrix.swap(col, pivot);
        rhs.swap(col, pivot);
        let inv = gf_inv(matrix[col][col]);
        for x in &mut matrix[col] {
            *x = gf_mul(*x, inv);
        }
        for x in &mut rhs[col] {
            *x = gf_mul(*x, inv);
        }
        for row in 0..m {
            if row != col && matrix[row][col] != 0 {
                let factor = matrix[row][col];
                let pivot_row = matrix[col].clone();
                for (x, p) in matrix[row].iter_mut().zip(&pivot_row) {
                    *x ^= gf_mul(factor, *p);
                }
                let pivot_rhs = rhs[col].clone();
                mul_acc(&mut rhs[row], factor, &pivot_rhs);
            }
        }
    }
    for (slot, solved) in missing.iter().zip(rhs) {
        data[*slot] = Some(solved);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_bounds() {
        assert!(FecConfig::new(0, 2).is_err());
        assert!(FecConfig::new(250, 10).is_err());
        assert!(FecConfig::new(8, 2).is_ok());
        assert_eq!(FecConfig::off().group_parity, 0);
    }

    #[test]
    fn field_arithmetic_sanity() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "a={a}");
            assert_eq!(gf_mul(a, 1), a);
            assert_eq!(gf_mul(a, 0), 0);
        }
        // Commutativity + distributivity spot checks.
        assert_eq!(gf_mul(7, 9), gf_mul(9, 7));
        assert_eq!(
            gf_mul(5, 13 ^ 200),
            gf_mul(5, 13) ^ gf_mul(5, 200),
            "multiplication distributes over XOR"
        );
    }

    fn group(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|j| {
                (0..len)
                    .map(|i| (seed ^ (j as u8)).wrapping_mul(31).wrapping_add(i as u8))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_every_loss_pattern_up_to_r() {
        let k = 5;
        let r = 2;
        let originals = group(k, 40, 0xA5);
        let refs: Vec<&[u8]> = originals.iter().map(|v| v.as_slice()).collect();
        let parity_full = encode_group(&refs, r);
        // Every subset of ≤2 lost data fragments × every subset of lost
        // parity (as long as enough parity survives).
        for lost_a in 0..k {
            for lost_b in lost_a..k {
                let n_lost = if lost_a == lost_b { 1 } else { 2 };
                for lost_parity in 0..=(r - n_lost) {
                    let mut data: Vec<Option<Vec<u8>>> =
                        originals.iter().cloned().map(Some).collect();
                    data[lost_a] = None;
                    data[lost_b] = None;
                    let mut parity: Vec<Option<Vec<u8>>> =
                        parity_full.iter().cloned().map(Some).collect();
                    for p in parity.iter_mut().take(lost_parity) {
                        *p = None;
                    }
                    let n = recover_group(&mut data, &parity, 40).expect("recoverable");
                    assert_eq!(n, n_lost);
                    for (got, want) in data.iter().zip(&originals) {
                        assert_eq!(got.as_ref().expect("present"), want);
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_losses_is_a_typed_error() {
        let originals = group(4, 16, 3);
        let refs: Vec<&[u8]> = originals.iter().map(|v| v.as_slice()).collect();
        let parity: Vec<Option<Vec<u8>>> = encode_group(&refs, 1).into_iter().map(Some).collect();
        let mut data: Vec<Option<Vec<u8>>> = originals.into_iter().map(Some).collect();
        data[0] = None;
        data[2] = None;
        let err = recover_group(&mut data, &parity, 16).expect_err("2 lost, 1 parity");
        assert!(matches!(
            err,
            NetError::Unrecoverable {
                missing: 2,
                parity: 1
            }
        ));
    }

    #[test]
    fn short_tail_fragment_zero_pads() {
        let full = vec![1u8, 2, 3, 4];
        let tail = vec![9u8, 8];
        let parity = encode_group(&[&full, &tail], 1);
        assert_eq!(parity[0].len(), 4);
        let mut data = vec![Some(full.clone()), None];
        let parity: Vec<Option<Vec<u8>>> = parity.into_iter().map(Some).collect();
        recover_group(&mut data, &parity, 4).expect("one loss, one parity");
        let recovered = data[1].take().expect("recovered");
        assert_eq!(&recovered[..2], &tail[..], "true bytes back");
        assert_eq!(&recovered[2..], &[0, 0], "padding is zeros");
    }

    #[test]
    fn r1_decode_is_the_xor_chain_shape() {
        // With one parity row the syndrome solve reduces to scaled XOR of
        // the survivors — sanity-check against a hand XOR in the field.
        let originals = group(3, 8, 7);
        let refs: Vec<&[u8]> = originals.iter().map(|v| v.as_slice()).collect();
        let parity = encode_group(&refs, 1);
        let mut data: Vec<Option<Vec<u8>>> = originals.iter().cloned().map(Some).collect();
        data[1] = None;
        let parity: Vec<Option<Vec<u8>>> = parity.into_iter().map(Some).collect();
        recover_group(&mut data, &parity, 8).expect("recoverable");
        assert_eq!(data[1].as_ref().expect("present"), &originals[1]);
    }
}
