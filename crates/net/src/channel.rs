//! Deterministic hostile-WAN channel model.
//!
//! [`WanChannel`] is a seeded, virtual-time packet channel: every effect —
//! loss, burst state, jitter, reordering, queueing — is a pure function of
//! the seed and the send times, so a run is bit-reproducible and composes
//! with the DES in `sieve-simnet`. No wall clock, no global RNG.
//!
//! The model layers, in order, per packet:
//!
//! 1. **Bandwidth cap** — a serialization link at `bandwidth_bps` with a
//!    bounded backlog of `queue_bytes`; a packet arriving to a full
//!    backlog is a *congestion drop* (this is the loss the feedback loop
//!    can actually fix by slowing the sender down), and one arriving to
//!    a backlog past [`ECN_QUEUE_FRACTION`] of the bound is ECN-marked —
//!    the early-warning form of the same signal;
//! 2. **Random loss** — i.i.d. or Gilbert–Elliott two-state burst loss;
//! 3. **Latency + jitter** — base propagation delay plus a uniform
//!    jitter draw;
//! 4. **Reordering** — with probability `reorder`, an extra delay up to
//!    `reorder_delay_secs` pushes the packet behind its successors.
//!
//! The RNG draws a fixed number of variates per send regardless of which
//! branches fire, so two configs with the same seed walk the same random
//! sequence — that is what makes A/B sweeps (FEC on/off at equal loss)
//! comparable packet for packet.

use std::collections::BTreeMap;

use rand::{rngs::StdRng, Rng, SeedableRng};
use sieve_simnet::SimTime;

use crate::feedback::WanTaps;
use crate::packet::Packet;
use crate::NetError;

/// Random-loss process applied after the bandwidth cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Independent loss per packet.
    Iid { loss: f64 },
    /// Two-state Gilbert–Elliott burst loss: per-packet transition
    /// probabilities between a good and a bad state, each with its own
    /// loss rate.
    GilbertElliott {
        to_bad: f64,
        to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    },
}

impl LossModel {
    /// Mean long-run loss rate of the process.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            Self::Iid { loss } => loss,
            Self::GilbertElliott {
                to_bad,
                to_good,
                loss_good,
                loss_bad,
            } => {
                // Stationary occupancy of the bad state.
                let denom = to_bad + to_good;
                if denom <= 0.0 {
                    return loss_good;
                }
                let p_bad = to_bad / denom;
                loss_good * (1.0 - p_bad) + loss_bad * p_bad
            }
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        let probs: Vec<f64> = match *self {
            Self::Iid { loss } => vec![loss],
            Self::GilbertElliott {
                to_bad,
                to_good,
                loss_good,
                loss_bad,
            } => {
                vec![to_bad, to_good, loss_good, loss_bad]
            }
        };
        for p in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(NetError::config(format!("probability {p} outside [0, 1]")));
            }
        }
        Ok(())
    }
}

/// Full channel parameterization.
#[derive(Debug, Clone, PartialEq)]
pub struct WanConfig {
    /// Seed for the channel's private RNG.
    pub seed: u64,
    /// Random-loss process.
    pub loss: LossModel,
    /// Probability a packet is delayed behind its successors.
    pub reorder: f64,
    /// Maximum extra delay a reordered packet picks up.
    pub reorder_delay_secs: f64,
    /// Uniform jitter bound added to every delivery.
    pub jitter_secs: f64,
    /// Base one-way propagation delay.
    pub latency_secs: f64,
    /// Serialization rate of the bottleneck link.
    pub bandwidth_bps: f64,
    /// Backlog bound; arrivals past it are congestion drops.
    pub queue_bytes: usize,
}

impl WanConfig {
    /// A clean, fast channel — loss-free, generous capacity. The base
    /// other presets perturb.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            loss: LossModel::Iid { loss: 0.0 },
            reorder: 0.0,
            reorder_delay_secs: 0.0,
            jitter_secs: 0.0,
            latency_secs: 0.02,
            bandwidth_bps: 1e9,
            queue_bytes: 1 << 20,
        }
    }

    /// The paper's edge→cloud WAN shape (30 Mbps / 20 ms, as in
    /// `Link::paper_wan`) with an i.i.d. loss knob and mild jitter.
    pub fn paper_wan(seed: u64, loss: f64) -> Self {
        Self {
            seed,
            loss: LossModel::Iid { loss },
            reorder: 0.01,
            reorder_delay_secs: 0.03,
            jitter_secs: 0.005,
            latency_secs: 0.02,
            bandwidth_bps: 30e6,
            queue_bytes: 256 * 1024,
        }
    }

    fn validate(&self) -> Result<(), NetError> {
        self.loss.validate()?;
        if !(0.0..=1.0).contains(&self.reorder) {
            return Err(NetError::config(format!(
                "reorder probability {} outside [0, 1]",
                self.reorder
            )));
        }
        for (name, v) in [
            ("reorder_delay_secs", self.reorder_delay_secs),
            ("jitter_secs", self.jitter_secs),
            ("latency_secs", self.latency_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(NetError::config(format!(
                    "{name} {v} must be finite and >= 0"
                )));
            }
        }
        if !self.bandwidth_bps.is_finite() || self.bandwidth_bps <= 0.0 {
            return Err(NetError::config(format!(
                "bandwidth_bps {} must be finite and > 0",
                self.bandwidth_bps
            )));
        }
        Ok(())
    }
}

/// Fraction of the queue bound past which an arriving packet is
/// ECN-marked: it is still delivered, but the standing backlog behind it
/// says the sender is outrunning the link. Marking at a quarter of the
/// bound (DCTCP-style) gives the feedback loop its earliest congestion
/// signal — it fires while the queue still has headroom, long before
/// anything is tail-dropped.
pub const ECN_QUEUE_FRACTION: f64 = 0.25;

/// Lifetime packet counts a channel keeps about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCounts {
    pub sent: u64,
    pub lost: u64,
    pub congestion_dropped: u64,
    /// Delivered, but ECN-marked on arrival at a standing queue.
    pub marked: u64,
    pub delivered: u64,
}

/// The channel itself. Feed packets with [`send`](Self::send), advance
/// virtual time and collect arrivals with [`poll`](Self::poll).
#[derive(Debug)]
pub struct WanChannel {
    cfg: WanConfig,
    rng: StdRng,
    in_bad: bool,
    /// Virtual time at which the serialization link frees up.
    link_free_at: SimTime,
    last_now: SimTime,
    /// Packets in flight, keyed by (delivery time, tie-break).
    in_flight: BTreeMap<(SimTime, u64), Packet>,
    next_tie: u64,
    counts: ChannelCounts,
    taps: Option<WanTaps>,
}

impl WanChannel {
    pub fn new(cfg: WanConfig) -> Result<Self, NetError> {
        cfg.validate()?;
        Ok(Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            in_bad: false,
            link_free_at: SimTime::ZERO,
            last_now: SimTime::ZERO,
            in_flight: BTreeMap::new(),
            next_tie: 0,
            counts: ChannelCounts::default(),
            taps: None,
        })
    }

    /// Wires the `wan.*` registry instruments into the send path.
    pub fn with_taps(cfg: WanConfig, taps: WanTaps) -> Result<Self, NetError> {
        let mut ch = Self::new(cfg)?;
        ch.taps = Some(taps);
        Ok(ch)
    }

    pub fn config(&self) -> &WanConfig {
        &self.cfg
    }

    pub fn counts(&self) -> ChannelCounts {
        self.counts
    }

    /// Offers one packet to the channel at virtual time `now`.
    ///
    /// Exactly four RNG variates are drawn per send — burst-state,
    /// loss, jitter, reorder — on every path, so the random sequence a
    /// seed produces does not depend on which effects fire.
    pub fn send(&mut self, now: SimTime, packet: Packet) {
        let now = now.max(self.last_now);
        self.last_now = now;
        self.counts.sent += 1;
        if let Some(t) = &self.taps {
            t.packets_sent.inc();
        }

        let u_state: f64 = self.rng.gen();
        let u_loss: f64 = self.rng.gen();
        let u_jitter: f64 = self.rng.gen();
        let u_reorder: f64 = self.rng.gen();

        // 1. Bandwidth cap: backlog beyond the queue bound is congestion.
        let backlog_secs = self.link_free_at.as_nanos().saturating_sub(now.as_nanos()) as f64 / 1e9;
        let queue_secs = self.cfg.queue_bytes as f64 * 8.0 / self.cfg.bandwidth_bps;
        if backlog_secs > queue_secs {
            self.counts.congestion_dropped += 1;
            if let Some(t) = &self.taps {
                t.packets_dropped_congestion.inc();
            }
            return;
        }
        if backlog_secs > ECN_QUEUE_FRACTION * queue_secs {
            self.counts.marked += 1;
            if let Some(t) = &self.taps {
                t.packets_marked.inc();
            }
        }
        let tx_secs = packet.wire_len() as f64 * 8.0 / self.cfg.bandwidth_bps;
        self.link_free_at = self.link_free_at.max(now).after_secs(tx_secs);

        // 2. Random loss.
        let loss_p = match self.cfg.loss {
            LossModel::Iid { loss } => loss,
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                loss_good,
                loss_bad,
            } => {
                let flip = if self.in_bad { to_good } else { to_bad };
                if u_state < flip {
                    self.in_bad = !self.in_bad;
                }
                if self.in_bad {
                    loss_bad
                } else {
                    loss_good
                }
            }
        };
        if u_loss < loss_p {
            self.counts.lost += 1;
            if let Some(t) = &self.taps {
                t.packets_lost.inc();
            }
            return;
        }

        // 3 + 4. Propagation, jitter, and the reorder push-back.
        let mut delay = self.cfg.latency_secs + self.cfg.jitter_secs * u_jitter;
        if self.cfg.reorder > 0.0 && u_reorder < self.cfg.reorder {
            // Reuse the reorder variate, rescaled to [0, 1), for the
            // extra-delay magnitude.
            delay += self.cfg.reorder_delay_secs * (u_reorder / self.cfg.reorder);
        }
        let ready = self.link_free_at.after_secs(delay);
        let tie = self.next_tie;
        self.next_tie += 1;
        self.in_flight.insert((ready, tie), packet);
    }

    /// Delivers every packet whose arrival time is at or before `now`,
    /// in arrival order.
    pub fn poll(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some((&(ready, _), _)) = self.in_flight.first_key_value() {
            if ready > now {
                break;
            }
            if let Some((_, pkt)) = self.in_flight.pop_first() {
                self.counts.delivered += 1;
                out.push(pkt);
            }
        }
        out
    }

    /// Arrival time of the next in-flight packet, if any.
    pub fn earliest_pending(&self) -> Option<SimTime> {
        self.in_flight.keys().next().map(|&(t, _)| t)
    }

    /// Delivers everything still in flight regardless of time.
    pub fn drain(&mut self) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some((_, pkt)) = self.in_flight.pop_first() {
            self.counts.delivered += 1;
            out.push(pkt);
        }
        out
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The `(stream, block_id)` pairs that still have at least one
    /// fragment in transit. The sending side uses this to tell "not yet
    /// arrived" apart from "never going to arrive": a sent block with no
    /// pending reassembly *and* no fragment in flight was dropped
    /// wholesale and can be declared lost immediately.
    pub fn in_flight_blocks(&self) -> std::collections::BTreeSet<(u16, u64)> {
        self.in_flight
            .values()
            .map(|p| (p.header.stream, p.header.block_id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketHeader};

    fn pkt(seq: u64, len: usize) -> Packet {
        Packet {
            header: PacketHeader {
                stream: 0,
                block_id: seq,
                seq,
                frag_index: 0,
                data_frags: 1,
                block_len: len as u32,
            },
            payload: vec![0u8; len],
        }
    }

    fn run(cfg: WanConfig, n: u64) -> (Vec<u64>, ChannelCounts) {
        let mut ch = WanChannel::new(cfg).expect("channel");
        for i in 0..n {
            ch.send(SimTime::from_secs_f64(i as f64 * 0.001), pkt(i, 600));
        }
        let seqs = ch.drain().into_iter().map(|p| p.header.seq).collect();
        (seqs, ch.counts())
    }

    #[test]
    fn clean_channel_delivers_everything_in_order() {
        let (seqs, counts) = run(WanConfig::clean(1), 200);
        assert_eq!(seqs, (0..200).collect::<Vec<_>>());
        assert_eq!(counts.delivered, 200);
        assert_eq!(counts.lost + counts.congestion_dropped, 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = WanConfig::paper_wan(99, 0.05);
        let a = run(cfg.clone(), 500);
        let b = run(cfg, 500);
        assert_eq!(a, b, "a seeded channel must be bit-reproducible");
    }

    #[test]
    fn different_seed_different_trace() {
        let a = run(WanConfig::paper_wan(1, 0.05), 500);
        let b = run(WanConfig::paper_wan(2, 0.05), 500);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn iid_loss_rate_lands_near_nominal() {
        let mut cfg = WanConfig::clean(7);
        cfg.loss = LossModel::Iid { loss: 0.1 };
        let (_, counts) = run(cfg, 5000);
        let rate = counts.lost as f64 / counts.sent as f64;
        assert!(
            (rate - 0.1).abs() < 0.02,
            "observed loss {rate} too far from 0.1"
        );
    }

    #[test]
    fn gilbert_elliott_bursts_and_matches_mean() {
        let model = LossModel::GilbertElliott {
            to_bad: 0.02,
            to_good: 0.2,
            loss_good: 0.001,
            loss_bad: 0.4,
        };
        let mean = model.mean_loss();
        let mut cfg = WanConfig::clean(11);
        cfg.loss = model;
        let (_, counts) = run(cfg, 20_000);
        let rate = counts.lost as f64 / counts.sent as f64;
        assert!(
            (rate - mean).abs() < 0.02,
            "observed loss {rate} too far from stationary mean {mean}"
        );
    }

    #[test]
    fn bandwidth_cap_causes_congestion_drops_when_overdriven() {
        let mut cfg = WanConfig::clean(3);
        cfg.bandwidth_bps = 1e6; // 1 Mbit
        cfg.queue_bytes = 4 * 1024;
        let mut ch = WanChannel::new(cfg).expect("channel");
        // Offer ~5 Mbit/s into a 1 Mbit/s link: most must tail-drop.
        for i in 0..1000u64 {
            ch.send(SimTime::from_secs_f64(i as f64 * 0.001), pkt(i, 600));
        }
        let c = ch.counts();
        assert!(
            c.congestion_dropped > 500,
            "expected heavy congestion, got {c:?}"
        );
        assert_eq!(c.sent, 1000);
    }

    #[test]
    fn ecn_marks_fire_before_congestion_drops() {
        let mut cfg = WanConfig::clean(9);
        cfg.bandwidth_bps = 1e6;
        cfg.queue_bytes = 64 * 1024; // 0.52 s of queue at 1 Mbit/s
        let mut ch = WanChannel::new(cfg).expect("channel");
        // Offer ~1.6 Mbit/s into 1 Mbit/s: the backlog builds through the
        // ECN threshold long before it reaches the drop bound.
        for i in 0..200u64 {
            ch.send(SimTime::from_secs_f64(i as f64 * 0.003), pkt(i, 600));
        }
        let c = ch.counts();
        assert!(
            c.marked > 0,
            "standing queue must raise ECN marks, got {c:?}"
        );
        assert_eq!(
            c.congestion_dropped, 0,
            "the queue still has headroom; marks are the early warning, got {c:?}"
        );
    }

    #[test]
    fn reordering_is_bounded_by_the_configured_delay() {
        let mut cfg = WanConfig::clean(5);
        cfg.reorder = 0.3;
        cfg.reorder_delay_secs = 0.05;
        let (seqs, counts) = run(cfg, 2000);
        assert_eq!(counts.delivered, 2000, "reordering must not lose packets");
        let mut displaced = 0u64;
        let mut max_back = 0i64;
        let mut hi = -1i64;
        for &s in &seqs {
            let s = s as i64;
            if s < hi {
                displaced += 1;
                max_back = max_back.max(hi - s);
            }
            hi = hi.max(s);
        }
        assert!(
            displaced > 0,
            "with reorder=0.3 some packets must arrive late"
        );
        // 50 ms of extra delay at 1 ms spacing bounds displacement ~50.
        assert!(
            max_back <= 60,
            "displacement {max_back} exceeds the delay bound"
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let mut cfg = WanConfig::clean(0);
        cfg.reorder = 1.5;
        assert!(matches!(WanChannel::new(cfg), Err(NetError::Config(_))));
        let mut cfg = WanConfig::clean(0);
        cfg.bandwidth_bps = 0.0;
        assert!(matches!(WanChannel::new(cfg), Err(NetError::Config(_))));
        let mut cfg = WanConfig::clean(0);
        cfg.loss = LossModel::Iid { loss: -0.1 };
        assert!(matches!(WanChannel::new(cfg), Err(NetError::Config(_))));
    }
}
