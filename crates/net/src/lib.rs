//! # sieve-net — edge→cloud transport over a hostile WAN
//!
//! The fleet's keep sink used to be the end of the line; this crate closes
//! the paper's Fig 4 loop: **fleet → packetizer → hostile WAN →
//! depacketizer → cloud → feedback → rate controller**.
//!
//! * [`fec`] — GF(256) Cauchy-matrix erasure coding: `K` data + `R`
//!   parity fragments per group, *any* ≤R losses per group recoverable;
//! * [`packet`] — block/fragment packetization to a fixed MTU
//!   (`(block_id, frag_index, frag_count)` headers) and out-of-order
//!   reassembly surfacing [`BlockOutcome::Delivered`] /
//!   [`BlockOutcome::Recovered`] / [`BlockOutcome::Lost`];
//! * [`channel`] — [`WanChannel`], a deterministic seeded channel model:
//!   i.i.d. or Gilbert–Elliott burst loss, bounded reordering, jitter and
//!   a token-bucket bandwidth cap with a bounded queue (overflow is
//!   congestion loss). Runs on [`sieve_simnet::SimTime`] — no wall clock,
//!   no global RNG — so it composes with the DES and the model checker;
//! * [`feedback`] — the `wan.*` registry instruments and the per-quantum
//!   [`sieve_core::adapt::WanFeedback`] collector that reads *the same
//!   counters* the operator watches in `fleet_top`;
//! * [`uplink`] — [`Uplink`] ties the four layers together behind one
//!   virtual-time pump, [`SharedUplink`] adapts it to a fleet
//!   [`sieve_fleet::KeepSink`] and to a [`sieve_simnet::LiveStage`] for
//!   `run_live_in` pipelines.

pub mod channel;
pub mod fec;
pub mod feedback;
pub mod packet;
pub mod uplink;

pub use channel::{LossModel, WanChannel, WanConfig};
pub use fec::FecConfig;
pub use feedback::{FeedbackCollector, WanTaps};
pub use packet::{BlockOutcome, BlockReport, Depacketizer, Packet, PacketHeader, Packetizer};
pub use uplink::{SharedUplink, Uplink, UplinkConfig};

/// Re-export of the feedback quantum consumed by
/// [`sieve_core::adapt::RateController::apply_wan_feedback`].
pub use sieve_core::adapt::WanFeedback as Feedback;

/// Errors of the transport layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An invalid configuration (MTU, FEC shape, channel parameters).
    Config(String),
    /// A packet that does not parse as a sieve-net packet.
    MalformedPacket(String),
    /// A FEC group with more losses than surviving parity.
    Unrecoverable {
        /// Data fragments missing from the group.
        missing: usize,
        /// Parity fragments that survived.
        parity: usize,
    },
    /// The recovery system had no pivot — impossible for a Cauchy matrix;
    /// kept as a typed error so a logic bug cannot panic a runtime path.
    SingularSystem,
}

impl NetError {
    pub(crate) fn config(msg: impl Into<String>) -> Self {
        Self::Config(msg.into())
    }

    pub(crate) fn malformed(msg: impl Into<String>) -> Self {
        Self::MalformedPacket(msg.into())
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config(msg) => write!(f, "invalid config: {msg}"),
            Self::MalformedPacket(msg) => write!(f, "malformed packet: {msg}"),
            Self::Unrecoverable { missing, parity } => write!(
                f,
                "unrecoverable FEC group: {missing} fragments missing, {parity} parity available"
            ),
            Self::SingularSystem => write!(f, "singular FEC recovery system"),
        }
    }
}

impl std::error::Error for NetError {}
