//! Stream identity, admission configuration and fleet errors.

use sieve_video::Resolution;

/// Fleet-assigned identifier of one admitted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub(crate) u64);

impl StreamId {
    /// The raw id value (stable for the lifetime of the fleet).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream#{}", self.0)
    }
}

/// Per-stream admission parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Free-form label carried into snapshots (camera name, dataset, ...).
    pub label: String,
    /// The stream's frame resolution (every pushed frame must match).
    pub resolution: Resolution,
    /// The stream's encode quality, needed to decode its frames.
    pub quality: u8,
    /// The requested sampling rate, if the stream's policy targets one —
    /// recorded so snapshots can report achieved vs. target.
    pub target_rate: Option<f64>,
    /// Expected keep rate in `[0, 1]`, seeding the stream's scheduling
    /// priority before any frame has been decided (see
    /// [`crate::priority`]). Defaults to the target rate, else 0.5.
    pub priority_hint: Option<f64>,
}

impl StreamConfig {
    /// A stream of `resolution`/`quality` frames with a label.
    pub fn new(label: impl Into<String>, resolution: Resolution, quality: u8) -> Self {
        Self {
            label: label.into(),
            resolution,
            quality,
            target_rate: None,
            priority_hint: None,
        }
    }

    /// Records the policy's target sampling rate for the metrics.
    #[must_use]
    pub fn with_target_rate(mut self, rate: f64) -> Self {
        self.target_rate = Some(rate);
        self
    }

    /// Seeds the stream's scheduling priority with an expected keep rate
    /// (clamped to `[0, 1]` at use).
    #[must_use]
    pub fn with_priority_hint(mut self, hint: f64) -> Self {
        self.priority_hint = Some(hint);
        self
    }
}

/// Failures of the fleet control plane (admission and ingest). Data-plane
/// failures — a frame that will not decode — are *not* errors: they are
/// counted per stream as `failed` and the stream keeps running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Admission refused: the fleet is at its stream cap.
    FleetFull {
        /// The configured cap.
        max_streams: usize,
    },
    /// No stream with this id (never joined, or already fully retired).
    UnknownStream(StreamId),
    /// The stream was closed; it accepts no further frames.
    StreamClosed(StreamId),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::FleetFull { max_streams } => {
                write!(f, "fleet at capacity ({max_streams} streams)")
            }
            FleetError::UnknownStream(id) => write!(f, "unknown {id}"),
            FleetError::StreamClosed(id) => write!(f, "{id} is closed"),
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_displays() {
        assert_eq!(StreamId(7).to_string(), "stream#7");
        assert_eq!(StreamId(7).raw(), 7);
    }

    #[test]
    fn errors_display() {
        assert!(FleetError::FleetFull { max_streams: 4 }
            .to_string()
            .contains('4'));
        assert!(FleetError::StreamClosed(StreamId(3))
            .to_string()
            .contains("stream#3"));
    }

    #[test]
    fn config_builder() {
        let c = StreamConfig::new("cam-a", Resolution::new(64, 48), 80).with_target_rate(0.1);
        assert_eq!(c.label, "cam-a");
        assert_eq!(c.target_rate, Some(0.1));
    }
}
