//! The sharded scheduler: a fixed worker pool driving one
//! [`EdgeSession`] per stream over bounded per-stream queues.
//!
//! Streams are hashed to shards at admission; each shard is one OS thread
//! plus one [`ShardQueue`] whose lanes are that shard's streams. Ingest
//! ([`Fleet::push`]) never blocks: a frame that finds its lane full or the
//! global frame budget exhausted is **shed** — counted, visible in the
//! metrics, and never seen by the selection policy (distinct from a policy
//! *drop*). Memory is bounded by construction: at most
//! `global_frame_budget` encoded frames are queued fleet-wide, and the
//! per-stream decode state is one [`EdgeSession`] (a stateful decoder plus
//! at most one previous frame — never a whole-stream buffer).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use sieve_core::{EdgeOutcome, EdgeSession, FrameSelector};
use sieve_simnet::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use sieve_simnet::sync::thread::{self, JoinHandle};
use sieve_simnet::sync::{Mutex, RwLock};
use sieve_simnet::{Popped, PushOutcome, ShardQueue};
use sieve_video::{EncodedFrame, Frame, FrameType};

use crate::metrics::{FleetReport, FleetSnapshot, StreamCell};
use crate::registry::{FleetError, StreamConfig, StreamId};

/// One encoded frame in flight: what a camera pushes into the fleet.
#[derive(Debug, Clone)]
pub struct FramePacket {
    /// Ascending per-stream frame index.
    pub index: usize,
    /// Frame type from the container metadata.
    pub frame_type: FrameType,
    /// Encoded payload.
    pub payload: Vec<u8>,
}

impl FramePacket {
    /// Packs frame `index` of an in-memory encoded stream.
    pub fn of(index: usize, frame: &EncodedFrame) -> Self {
        Self {
            index,
            frame_type: frame.frame_type,
            payload: frame.data.clone(),
        }
    }
}

/// Why a frame was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The stream's own bounded queue is full (slow consumer).
    QueueFull,
    /// The fleet-wide frame budget is exhausted (global overload).
    GlobalBudget,
}

/// Outcome of one non-blocking [`Fleet::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// The frame was queued for its stream's shard.
    Queued,
    /// The frame was refused under load and will never be processed; the
    /// stream's `shed` counter was incremented.
    Shed(ShedCause),
}

/// Sizing of the fleet runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads; streams are hashed across them.
    pub shards: usize,
    /// Per-stream bounded queue depth (frames).
    pub queue_capacity: usize,
    /// Max encoded frames queued fleet-wide; pushes beyond it shed.
    pub global_frame_budget: usize,
    /// Admission cap on concurrently *live* streams (left streams free
    /// their slot immediately).
    pub max_streams: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 16,
            global_frame_budget: 256,
            max_streams: 64,
        }
    }
}

/// The per-stream worker-side state, owned by exactly one shard.
struct StreamWorker {
    edge: EdgeSession,
    cell: Arc<StreamCell>,
    on_keep: Option<KeepSink>,
}

/// Callback invoked on the shard thread for every kept frame.
pub type KeepSink = Box<dyn FnMut(usize, &Frame) + Send>;

/// The registry's view of one stream.
struct StreamEntry {
    shard: usize,
    cell: Arc<StreamCell>,
    label: String,
    selector: &'static str,
    target_rate: Option<f64>,
    closed: bool,
}

/// A multi-stream edge runtime: stream admission, sharded scheduling with
/// bounded queues and explicit load shedding, per-stream streaming
/// selection. See the crate docs for the full model and an example.
pub struct Fleet {
    config: FleetConfig,
    queues: Vec<Arc<ShardQueue<FramePacket>>>,
    states: Vec<Arc<Mutex<BTreeMap<u64, StreamWorker>>>>,
    workers: Vec<JoinHandle<()>>,
    registry: RwLock<BTreeMap<u64, StreamEntry>>,
    next_id: AtomicU64,
    inflight: Arc<AtomicUsize>,
    started: Instant,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("config", &self.config)
            .field("streams", &self.registry.read().len())
            .finish()
    }
}

/// SplitMix64 finalizer (the same mixer `sieve_datasets::stream_seed`
/// uses for content seeds): spreads sequential stream ids across shards.
fn shard_of(id: u64, shards: usize) -> usize {
    let mut z = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

impl Fleet {
    /// Starts the worker pool (idle until streams join).
    ///
    /// # Panics
    ///
    /// Panics if `config.shards`, `queue_capacity`, `global_frame_budget`
    /// or `max_streams` is zero.
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.shards > 0, "fleet needs at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.global_frame_budget > 0,
            "frame budget must be positive"
        );
        assert!(config.max_streams > 0, "stream cap must be positive");
        let inflight = Arc::new(AtomicUsize::new(0));
        let mut queues = Vec::with_capacity(config.shards);
        let mut states = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            let queue = Arc::new(ShardQueue::<FramePacket>::new(config.queue_capacity));
            let state: Arc<Mutex<BTreeMap<u64, StreamWorker>>> =
                Arc::new(Mutex::new(BTreeMap::new()));
            let (q, st, infl) = (queue.clone(), state.clone(), inflight.clone());
            workers.push(thread::spawn(move || shard_loop(&q, &st, &infl)));
            queues.push(queue);
            states.push(state);
        }
        Self {
            config,
            queues,
            states,
            workers,
            registry: RwLock::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
            inflight,
            started: Instant::now(),
        }
    }

    /// The runtime's sizing.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Admits a stream driven by `selector`'s streaming session. The
    /// selector is consulted on the caller's thread (session factory +
    /// metadata); only the session moves to the owning shard. On-line
    /// policies need no `prepare`, which is the point: the fleet never
    /// sees a whole video.
    ///
    /// # Errors
    ///
    /// [`FleetError::FleetFull`] once `max_streams` streams are *live*
    /// (joined and not yet left). Left streams stop counting toward the
    /// cap immediately, so a fleet can churn streams indefinitely; their
    /// registry entries stay resolvable for metrics until shutdown.
    pub fn join<S: FrameSelector + ?Sized>(
        &self,
        selector: &S,
        config: StreamConfig,
    ) -> Result<StreamId, FleetError> {
        self.admit(selector, config, None)
    }

    /// [`Fleet::join`], plus a sink invoked on the shard thread for every
    /// kept frame `(index, pixels)` — the hook a cloud uplink or detector
    /// attaches to.
    ///
    /// # Errors
    ///
    /// Same admission failures as [`Fleet::join`].
    pub fn join_with_sink<S: FrameSelector + ?Sized>(
        &self,
        selector: &S,
        config: StreamConfig,
        on_keep: KeepSink,
    ) -> Result<StreamId, FleetError> {
        self.admit(selector, config, Some(on_keep))
    }

    fn admit<S: FrameSelector + ?Sized>(
        &self,
        selector: &S,
        config: StreamConfig,
        on_keep: Option<KeepSink>,
    ) -> Result<StreamId, FleetError> {
        let mut registry = self.registry.write();
        // The cap applies to *live* streams: entries of left streams stay
        // in the registry for metrics but free their admission slot.
        if registry.values().filter(|e| !e.closed).count() >= self.config.max_streams {
            return Err(FleetError::FleetFull {
                max_streams: self.config.max_streams,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = shard_of(id, self.config.shards);
        let cell = Arc::new(StreamCell::default());
        let worker = StreamWorker {
            edge: EdgeSession::open(selector, config.resolution, config.quality),
            cell: cell.clone(),
            on_keep,
        };
        // Worker state must exist before the lane opens: once the lane is
        // visible, frames can reach the shard thread.
        self.states[shard].lock().insert(id, worker);
        assert!(self.queues[shard].open_lane(id), "fresh ids are unique");
        registry.insert(
            id,
            StreamEntry {
                shard,
                cell,
                label: config.label,
                selector: selector.name(),
                // Prefer the caller's explicit target; fall back to the
                // policy's own on-line target so the metrics cannot
                // silently disagree with the deployed budget.
                target_rate: config.target_rate.or_else(|| selector.target_rate()),
                closed: false,
            },
        );
        Ok(StreamId(id))
    }

    /// Offers one frame, never blocking. Under load the frame is shed —
    /// see [`Ingest::Shed`] — and the stream's policy never observes it.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] / [`FleetError::StreamClosed`] for
    /// control-plane misuse; shedding is *not* an error.
    pub fn push(&self, id: StreamId, packet: FramePacket) -> Result<Ingest, FleetError> {
        let (shard, cell) = {
            let registry = self.registry.read();
            let entry = registry.get(&id.0).ok_or(FleetError::UnknownStream(id))?;
            if entry.closed {
                return Err(FleetError::StreamClosed(id));
            }
            (entry.shard, entry.cell.clone())
        };
        // Global budget first: one reservation per queued frame, released
        // by the worker after processing.
        let budget = self.config.global_frame_budget;
        if self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < budget).then_some(n + 1)
            })
            .is_err()
        {
            cell.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Ok(Ingest::Shed(ShedCause::GlobalBudget));
        }
        // Count the frame as queued *before* publishing it: once try_push
        // succeeds the shard worker may pop (and decrement) immediately,
        // and a decrement racing ahead of the increment would wrap the
        // depth counter.
        cell.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
        match self.queues[shard].try_push(id.0, packet) {
            PushOutcome::Queued => Ok(Ingest::Queued),
            PushOutcome::Shed => {
                cell.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                cell.counters.shed.fetch_add(1, Ordering::Relaxed);
                Ok(Ingest::Shed(ShedCause::QueueFull))
            }
            PushOutcome::NoSuchLane | PushOutcome::LaneClosed => {
                cell.counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                Err(FleetError::StreamClosed(id))
            }
        }
    }

    /// Ends a stream: no further frames are accepted; queued frames still
    /// process, then the session is flushed on its shard and the stream
    /// reports [`StreamSnapshot::done`](crate::StreamSnapshot::done).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] / [`FleetError::StreamClosed`].
    pub fn leave(&self, id: StreamId) -> Result<(), FleetError> {
        let mut registry = self.registry.write();
        let entry = registry
            .get_mut(&id.0)
            .ok_or(FleetError::UnknownStream(id))?;
        if entry.closed {
            return Err(FleetError::StreamClosed(id));
        }
        entry.closed = true;
        self.queues[entry.shard].close_lane(id.0);
        Ok(())
    }

    /// A live, lock-light view of every stream and the fleet aggregate.
    pub fn snapshot(&self) -> FleetSnapshot {
        let registry = self.registry.read();
        FleetSnapshot::of(
            registry
                .iter()
                .map(|(&id, e)| {
                    e.cell
                        .snapshot(StreamId(id), &e.label, e.selector, e.target_rate)
                })
                .collect(),
        )
    }

    /// Frames currently queued fleet-wide (bounded by
    /// [`FleetConfig::global_frame_budget`]).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Closes every stream, drains every queue, joins the workers and
    /// returns the final report.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn shutdown(mut self) -> FleetReport {
        {
            let mut registry = self.registry.write();
            for (id, entry) in registry.iter_mut() {
                if !entry.closed {
                    entry.closed = true;
                    self.queues[entry.shard].close_lane(*id);
                }
            }
        }
        for queue in &self.queues {
            queue.shutdown();
        }
        for worker in std::mem::take(&mut self.workers) {
            // lint:allow(no-unwrap): re-raising a shard worker panic is the documented contract of shutdown()
            worker.join().expect("shard worker panicked");
        }
        let snapshot = self.snapshot();
        FleetReport {
            snapshot,
            wall: self.started.elapsed(),
        }
    }
}

impl Drop for Fleet {
    /// A fleet dropped without [`Fleet::shutdown`] (early return, panic
    /// unwind) still stops and joins its workers instead of leaking
    /// threads blocked on empty shard queues. After an explicit
    /// `shutdown()` this is a no-op (queues already down, workers taken).
    fn drop(&mut self) {
        for queue in &self.queues {
            queue.shutdown();
        }
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
    }
}

/// One shard's worker loop: round-robin over the shard's lanes, one frame
/// at a time, with the stream's state taken out of the shared map for the
/// duration of the (slow) decode so admission never waits on codec work.
fn shard_loop(
    queue: &ShardQueue<FramePacket>,
    states: &Mutex<BTreeMap<u64, StreamWorker>>,
    inflight: &AtomicUsize,
) {
    while let Some(popped) = queue.pop() {
        match popped {
            Popped::Item(key, packet) => {
                let Some(mut worker) = states.lock().remove(&key) else {
                    // Stream state already retired (finish raced a late
                    // item); release the reservation and move on.
                    inflight.fetch_sub(1, Ordering::AcqRel);
                    continue;
                };
                let counters = &worker.cell.counters;
                counters.queue_depth.fetch_sub(1, Ordering::Relaxed);
                let payload_len = packet.payload.len() as u64;
                match worker
                    .edge
                    .observe(packet.index, packet.frame_type, packet.payload)
                {
                    EdgeOutcome::Kept(frame) => {
                        counters.kept.fetch_add(1, Ordering::Relaxed);
                        counters
                            .kept_payload_bytes
                            .fetch_add(payload_len, Ordering::Relaxed);
                        if let Some(sink) = &mut worker.on_keep {
                            sink(packet.index, &frame);
                        }
                    }
                    EdgeOutcome::Dropped => {
                        counters.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    EdgeOutcome::Failed => {
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                counters.processed.fetch_add(1, Ordering::Relaxed);
                inflight.fetch_sub(1, Ordering::AcqRel);
                states.lock().insert(key, worker);
            }
            Popped::LaneFinished(key) => {
                if let Some(mut worker) = states.lock().remove(&key) {
                    let result = worker.edge.finish();
                    *worker.cell.finish_error.lock() = result.err().map(|e| e.to_string());
                    worker.cell.done.store(true, Ordering::Release);
                }
            }
        }
    }
}
