//! The sharded scheduler: a work-stealing worker pool driving one
//! [`EdgeSession`] per stream over bounded per-stream queues.
//!
//! Streams are hashed to shards at admission; each shard is one OS thread
//! plus one [`ShardQueue`] whose lanes are that shard's streams. Ingest
//! ([`Fleet::push`]) never blocks: a frame that finds its lane full or the
//! global frame budget exhausted is **shed** — counted, visible in the
//! metrics, and never seen by the selection policy (distinct from a policy
//! *drop*). Memory is bounded by construction: at most
//! `global_frame_budget` encoded frames are queued fleet-wide, and
//! per-stream decode state is one pooled decoder (acquired on a stream's
//! first frame, recycled into the shared slab pool at finish) plus at most
//! one previous frame, never a whole-stream buffer.
//!
//! # Work stealing
//!
//! A shard that finds its own queue empty does not sleep immediately: it
//! sweeps its neighbours' queues with [`ShardQueue::try_steal`] —
//! owner-preferred (`try_lock`; contention means the owner is active, the
//! thief moves on and counts a `steal_fail`), steal-half batching, and the
//! lane-busy claim that makes theft invisible to correctness: a claimed
//! lane is skipped by its owner and its end-of-stream flush is deferred,
//! so no frame is lost, none is double-drained, and per-lane FIFO order is
//! preserved (the stolen batch is strictly older than anything the owner
//! can still pop). Stolen frames are processed with the victim stream's
//! own state and counters; only the CPU moves.
//!
//! **Lock order.** A worker takes, in order and never simultaneously:
//! the victim's queue lock (released inside `try_steal`), then the
//! victim's `states` map lock (released before decoding), then — after
//! decode — the `states` lock again to re-park the stream. The registry
//! lock precedes any of these on the admission path and is never taken by
//! workers, so no cycle exists between registry, states maps and queue
//! internals.
//!
//! # Priority
//!
//! With [`FleetConfig::priority_lanes`] on, every keep/drop decision
//! updates the stream's keep-rate EWMA and re-derives its lane weight
//! ([`crate::priority`]) in the same [`ShardQueue::complete`] call that
//! releases the lane — recently-keeping cameras outrank idle ones, and the
//! queue's aging term bounds any lane's wait regardless of weights.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use sieve_core::{EdgeOutcome, EdgeSession, FrameSelector, SelectorSession};
use sieve_simnet::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use sieve_simnet::sync::thread::{self, JoinHandle};
use sieve_simnet::sync::{Mutex, RwLock};
use sieve_simnet::{GuardedPop, PushOutcome, ShardQueue, Steal};
use sieve_video::{EncodedFrame, Frame, FrameType, Resolution};

use sieve_stats::Registry as StatsRegistry;

use crate::metrics::{FleetInstruments, FleetReport, FleetSnapshot, StreamCell};
use crate::pool::DecoderPool;
use crate::priority::{initial_ewma, update_ewma, weight_of};
use crate::registry::{FleetError, StreamConfig, StreamId};

/// One encoded frame in flight: what a camera pushes into the fleet.
#[derive(Debug, Clone)]
pub struct FramePacket {
    /// Ascending per-stream frame index.
    pub index: usize,
    /// Frame type from the container metadata.
    pub frame_type: FrameType,
    /// Encoded payload.
    pub payload: Vec<u8>,
}

impl FramePacket {
    /// Packs frame `index` of an in-memory encoded stream.
    pub fn of(index: usize, frame: &EncodedFrame) -> Self {
        Self {
            index,
            frame_type: frame.frame_type,
            payload: frame.data.clone(),
        }
    }
}

/// A queued frame plus its admission timestamp (the start of the
/// decision-latency clock). Model-check builds carry no timestamp: wall
/// time is nondeterministic and must not influence explored schedules.
#[derive(Debug)]
struct QueuedFrame {
    packet: FramePacket,
    #[cfg(not(feature = "model-check"))]
    enqueued: Instant,
}

impl QueuedFrame {
    fn now(packet: FramePacket) -> Self {
        Self {
            packet,
            #[cfg(not(feature = "model-check"))]
            enqueued: Instant::now(),
        }
    }
}

/// Why a frame was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The stream's own bounded queue is full (slow consumer).
    QueueFull,
    /// The fleet-wide frame budget is exhausted (global overload).
    GlobalBudget,
}

/// Outcome of one non-blocking [`Fleet::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// The frame was queued for its stream's shard.
    Queued,
    /// The frame was refused under load and will never be processed; the
    /// stream's `shed` counter was incremented.
    Shed(ShedCause),
}

/// Sizing of the fleet runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Worker threads; streams are hashed across them.
    pub shards: usize,
    /// Per-stream bounded queue depth (frames).
    pub queue_capacity: usize,
    /// Max encoded frames queued fleet-wide; pushes beyond it shed.
    pub global_frame_budget: usize,
    /// Admission cap on concurrently *live* streams (left streams free
    /// their slot immediately).
    pub max_streams: usize,
    /// Idle shards drain hot neighbours' lanes (see the module docs).
    /// Off, each shard only ever touches its own queue — the thread-per-
    /// shard baseline the benchmarks compare against.
    pub work_stealing: bool,
    /// Lane weights follow per-stream keep rates ([`crate::priority`]).
    /// Off, all lanes stay at weight 1: plain round-robin.
    pub priority_lanes: bool,
    /// Mirror fleet-wide totals into the stats registry on every decision
    /// (the `"fleet"` stage a [`sieve_stats::Collector`] samples). Off,
    /// only the per-stream cells, steal counters and the decision-latency
    /// histogram are maintained — the uninstrumented baseline the overhead
    /// benchmark compares against.
    pub stats: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 16,
            global_frame_budget: 256,
            max_streams: 64,
            work_stealing: true,
            priority_lanes: true,
            stats: true,
        }
    }
}

/// Most frames one steal takes; `try_steal` additionally never takes more
/// than half the victim lane's queue.
const STEAL_BATCH_MAX: usize = 8;

/// A stream's edge machinery, materialised lazily: registered-but-idle
/// streams hold only their (small) policy session; the decoder — the
/// dominant allocation — is acquired from the shared pool on the first
/// frame and recycled at finish.
enum EdgeState {
    /// No frame seen yet; no decoder held.
    Idle {
        session: Box<dyn SelectorSession>,
        full_decode: bool,
        resolution: Resolution,
        quality: u8,
    },
    /// Frames flowing; a pooled decoder is in use. Boxed: the session
    /// (decoder + selector) dwarfs the other variants.
    Active(Box<EdgeSession>),
    /// Placeholder while ownership moves between the variants.
    Retired,
}

/// The per-stream worker-side state, owned by exactly one shard (or, for
/// the duration of a stolen batch, by the claiming thief).
struct StreamWorker {
    state: EdgeState,
    cell: Arc<StreamCell>,
    on_keep: Option<KeepSink>,
    /// EWMA of keep decisions, driving the lane weight.
    keep_ewma: f64,
}

impl StreamWorker {
    /// The live edge session, activating it (pool decoder acquisition) on
    /// the stream's first frame.
    fn session(&mut self, pool: &DecoderPool) -> &mut EdgeSession {
        if matches!(self.state, EdgeState::Idle { .. }) {
            let EdgeState::Idle {
                session,
                full_decode,
                resolution,
                quality,
            } = std::mem::replace(&mut self.state, EdgeState::Retired)
            else {
                unreachable!("just matched Idle");
            };
            let decoder = pool.acquire(resolution, quality);
            self.state = EdgeState::Active(Box::new(EdgeSession::from_parts(
                session,
                full_decode,
                decoder,
                resolution,
                quality,
            )));
        }
        match &mut self.state {
            EdgeState::Active(edge) => edge,
            // A retired stream's worker is removed from the states map at
            // finish, so a frame can never reach it.
            EdgeState::Idle { .. } | EdgeState::Retired => {
                unreachable!("frame delivered to a retired stream")
            }
        }
    }
}

/// Callback invoked on the shard thread for every kept frame: the frame
/// index, the decoded pixels, and the encoded payload that produced them —
/// the bytes an uplink ships. The payload is cloned ahead of the decode
/// only for streams that attach a sink; sink-less streams pay nothing.
pub type KeepSink = Box<dyn FnMut(usize, &Frame, &[u8]) + Send>;

/// The registry's view of one stream.
struct StreamEntry {
    shard: usize,
    cell: Arc<StreamCell>,
    label: String,
    selector: &'static str,
    target_rate: Option<f64>,
    closed: bool,
}

/// A multi-stream edge runtime: stream admission, sharded scheduling with
/// bounded queues, work stealing, keep-rate-derived lane priorities and
/// explicit load shedding. See the crate docs for the full model.
pub struct Fleet {
    config: FleetConfig,
    queues: Vec<Arc<ShardQueue<QueuedFrame>>>,
    states: Vec<Arc<Mutex<BTreeMap<u64, StreamWorker>>>>,
    workers: Vec<JoinHandle<()>>,
    registry: RwLock<BTreeMap<u64, StreamEntry>>,
    next_id: AtomicU64,
    inflight: Arc<AtomicUsize>,
    instruments: Arc<FleetInstruments>,
    pool: Arc<DecoderPool>,
    started: Instant,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("config", &self.config)
            .field("streams", &self.registry.read().len())
            .finish()
    }
}

/// SplitMix64 finalizer (the same mixer `sieve_datasets::stream_seed`
/// uses for content seeds): spreads sequential stream ids across shards.
/// Public so load generators can *construct* skew — ids are assigned
/// sequentially from 0 in join order, so a bench can predict each future
/// stream's home shard and aim a hot workload at one of them.
pub fn shard_of(id: u64, shards: usize) -> usize {
    let mut z = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

impl Fleet {
    /// Starts the worker pool (idle until streams join) over a private
    /// stats registry — see [`Fleet::with_registry`] to share one.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards`, `queue_capacity`, `global_frame_budget`
    /// or `max_streams` is zero.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_registry(config, Arc::new(StatsRegistry::new()))
    }

    /// [`Fleet::new`], emitting into `registry` (under the `"fleet"`
    /// stage) instead of a private one — the constructor a dashboard or
    /// collector uses to sample the fleet alongside other subsystems.
    ///
    /// # Panics
    ///
    /// Same sizing panics as [`Fleet::new`], plus the registry panics if a
    /// `fleet.*` instrument name is already registered as a different
    /// kind.
    pub fn with_registry(config: FleetConfig, stats_registry: Arc<StatsRegistry>) -> Self {
        assert!(config.shards > 0, "fleet needs at least one shard");
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(
            config.global_frame_budget > 0,
            "frame budget must be positive"
        );
        assert!(config.max_streams > 0, "stream cap must be positive");
        let inflight = Arc::new(AtomicUsize::new(0));
        let instruments = Arc::new(FleetInstruments::in_registry(stats_registry, config.stats));
        let pool = Arc::new(DecoderPool::default());
        let queues: Vec<_> = (0..config.shards)
            .map(|_| Arc::new(ShardQueue::<QueuedFrame>::new(config.queue_capacity)))
            .collect();
        let states: Vec<Arc<Mutex<BTreeMap<u64, StreamWorker>>>> = (0..config.shards)
            .map(|_| Arc::new(Mutex::new(BTreeMap::new())))
            .collect();
        let workers = (0..config.shards)
            .map(|me| {
                let ctx = ShardCtx {
                    me,
                    queues: queues.clone(),
                    states: states.clone(),
                    inflight: inflight.clone(),
                    instruments: instruments.clone(),
                    pool: pool.clone(),
                    work_stealing: config.work_stealing,
                    priority_lanes: config.priority_lanes,
                };
                thread::spawn(move || shard_loop(&ctx))
            })
            .collect();
        Self {
            config,
            queues,
            states,
            workers,
            registry: RwLock::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
            inflight,
            instruments,
            pool,
            started: Instant::now(),
        }
    }

    /// The runtime's sizing.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The stats registry this fleet emits into (`"fleet"` stage) — hand
    /// it to a [`sieve_stats::Collector`] for time series, or register
    /// further stages beside the fleet's.
    pub fn stats_registry(&self) -> &Arc<StatsRegistry> {
        &self.instruments.registry
    }

    /// Admits a stream driven by `selector`'s streaming session. The
    /// selector is consulted on the caller's thread (session factory +
    /// metadata); only the session moves to the owning shard. On-line
    /// policies need no `prepare`, which is the point: the fleet never
    /// sees a whole video. No decoder is allocated until the stream's
    /// first frame arrives.
    ///
    /// # Errors
    ///
    /// [`FleetError::FleetFull`] once `max_streams` streams are *live*
    /// (joined and not yet left). Left streams stop counting toward the
    /// cap immediately, so a fleet can churn streams indefinitely; their
    /// registry entries stay resolvable for metrics until shutdown.
    pub fn join<S: FrameSelector + ?Sized>(
        &self,
        selector: &S,
        config: StreamConfig,
    ) -> Result<StreamId, FleetError> {
        self.admit(selector, config, None)
    }

    /// [`Fleet::join`], plus a sink invoked on the shard thread for every
    /// kept frame `(index, pixels)` — the hook a cloud uplink or detector
    /// attaches to.
    ///
    /// # Errors
    ///
    /// Same admission failures as [`Fleet::join`].
    pub fn join_with_sink<S: FrameSelector + ?Sized>(
        &self,
        selector: &S,
        config: StreamConfig,
        on_keep: KeepSink,
    ) -> Result<StreamId, FleetError> {
        self.admit(selector, config, Some(on_keep))
    }

    fn admit<S: FrameSelector + ?Sized>(
        &self,
        selector: &S,
        config: StreamConfig,
        on_keep: Option<KeepSink>,
    ) -> Result<StreamId, FleetError> {
        let mut registry = self.registry.write();
        // The cap applies to *live* streams: entries of left streams stay
        // in the registry for metrics but free their admission slot.
        if registry.values().filter(|e| !e.closed).count() >= self.config.max_streams {
            return Err(FleetError::FleetFull {
                max_streams: self.config.max_streams,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = shard_of(id, self.config.shards);
        let cell = Arc::new(StreamCell::default());
        let target_rate = config.target_rate.or_else(|| selector.target_rate());
        let ewma = initial_ewma(config.priority_hint.or(target_rate));
        let worker = StreamWorker {
            state: EdgeState::Idle {
                session: selector.session(),
                full_decode: selector.requires_full_decode(),
                resolution: config.resolution,
                quality: config.quality,
            },
            cell: cell.clone(),
            on_keep,
            keep_ewma: ewma,
        };
        // Worker state must exist before the lane opens: once the lane is
        // visible, frames can reach the shard thread.
        self.states[shard].lock().insert(id, worker);
        assert!(self.queues[shard].open_lane(id), "fresh ids are unique");
        if self.config.priority_lanes {
            self.queues[shard].set_lane_weight(id, weight_of(ewma));
        }
        registry.insert(
            id,
            StreamEntry {
                shard,
                cell,
                label: config.label,
                selector: selector.name(),
                // Prefer the caller's explicit target; fall back to the
                // policy's own on-line target so the metrics cannot
                // silently disagree with the deployed budget.
                target_rate,
                closed: false,
            },
        );
        Ok(StreamId(id))
    }

    /// Offers one frame, never blocking. Under load the frame is shed —
    /// see [`Ingest::Shed`] — and the stream's policy never observes it.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] / [`FleetError::StreamClosed`] for
    /// control-plane misuse; shedding is *not* an error.
    pub fn push(&self, id: StreamId, packet: FramePacket) -> Result<Ingest, FleetError> {
        let (shard, cell) = {
            let registry = self.registry.read();
            let entry = registry.get(&id.0).ok_or(FleetError::UnknownStream(id))?;
            if entry.closed {
                return Err(FleetError::StreamClosed(id));
            }
            (entry.shard, entry.cell.clone())
        };
        // Global budget first: one reservation per queued frame, released
        // by the worker after processing.
        let budget = self.config.global_frame_budget;
        if self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < budget).then_some(n + 1)
            })
            .is_err()
        {
            cell.counters.shed.inc();
            if let Some(emit) = &self.instruments.emit {
                emit.shed.inc();
            }
            return Ok(Ingest::Shed(ShedCause::GlobalBudget));
        }
        // Count the frame as queued *before* publishing it: once try_push
        // succeeds the shard worker may pop (and decrement) immediately,
        // and a decrement racing ahead of the increment would wrap the
        // depth counter.
        cell.counters.queue_depth.inc();
        if let Some(emit) = &self.instruments.emit {
            emit.queue_depth.inc();
        }
        match self.queues[shard].try_push(id.0, QueuedFrame::now(packet)) {
            PushOutcome::Queued => {
                // A backlogged home shard means idle neighbours should come
                // stealing; the nudge is a hint (notify without state), so
                // it is level-triggered off every push while backlog lasts.
                // Model-check builds skip it to keep schedules small; the
                // checker's own steal models drive thieves explicitly.
                #[cfg(not(feature = "model-check"))]
                if self.config.work_stealing && self.queues[shard].backlogged() {
                    for (i, queue) in self.queues.iter().enumerate() {
                        if i != shard {
                            queue.nudge();
                        }
                    }
                }
                Ok(Ingest::Queued)
            }
            PushOutcome::Shed => {
                cell.counters.queue_depth.dec();
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                cell.counters.shed.inc();
                if let Some(emit) = &self.instruments.emit {
                    emit.queue_depth.dec();
                    emit.shed.inc();
                }
                Ok(Ingest::Shed(ShedCause::QueueFull))
            }
            PushOutcome::NoSuchLane | PushOutcome::LaneClosed => {
                cell.counters.queue_depth.dec();
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                if let Some(emit) = &self.instruments.emit {
                    emit.queue_depth.dec();
                }
                Err(FleetError::StreamClosed(id))
            }
        }
    }

    /// Ends a stream: no further frames are accepted; queued frames still
    /// process, then the session is flushed on its shard and the stream
    /// reports [`StreamSnapshot::done`](crate::StreamSnapshot::done).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownStream`] / [`FleetError::StreamClosed`].
    pub fn leave(&self, id: StreamId) -> Result<(), FleetError> {
        let mut registry = self.registry.write();
        let entry = registry
            .get_mut(&id.0)
            .ok_or(FleetError::UnknownStream(id))?;
        if entry.closed {
            return Err(FleetError::StreamClosed(id));
        }
        entry.closed = true;
        self.queues[entry.shard].close_lane(id.0);
        Ok(())
    }

    /// A live, lock-light view of every stream and the fleet aggregate.
    pub fn snapshot(&self) -> FleetSnapshot {
        let registry = self.registry.read();
        FleetSnapshot::of(
            registry
                .iter()
                .map(|(&id, e)| {
                    e.cell
                        .snapshot(StreamId(id), &e.label, e.selector, e.target_rate)
                })
                .collect(),
            &self.instruments,
        )
    }

    /// Frames currently queued fleet-wide (bounded by
    /// [`FleetConfig::global_frame_budget`]).
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Decoders currently parked in the shared slab pool — live decoders
    /// track *actively decoding* streams, not registered ones.
    pub fn pooled_decoders(&self) -> usize {
        self.pool.parked()
    }

    /// Decoder acquisitions served by recycling a parked decoder instead
    /// of constructing a fresh one (stream churn stops allocating).
    pub fn decoder_reuses(&self) -> u64 {
        self.pool.reuses()
    }

    /// Closes every stream, drains every queue, joins the workers and
    /// returns the final report.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn shutdown(mut self) -> FleetReport {
        {
            let mut registry = self.registry.write();
            for (id, entry) in registry.iter_mut() {
                if !entry.closed {
                    entry.closed = true;
                    self.queues[entry.shard].close_lane(*id);
                }
            }
        }
        for queue in &self.queues {
            queue.shutdown();
        }
        for worker in std::mem::take(&mut self.workers) {
            // lint:allow(no-unwrap): re-raising a shard worker panic is the documented contract of shutdown()
            worker.join().expect("shard worker panicked");
        }
        let snapshot = self.snapshot();
        FleetReport {
            snapshot,
            wall: self.started.elapsed(),
        }
    }
}

impl Drop for Fleet {
    /// A fleet dropped without [`Fleet::shutdown`] (early return, panic
    /// unwind) still stops and joins its workers instead of leaking
    /// threads blocked on empty shard queues. After an explicit
    /// `shutdown()` this is a no-op (queues already down, workers taken).
    fn drop(&mut self) {
        for queue in &self.queues {
            queue.shutdown();
        }
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
    }
}

/// Everything one shard worker needs: its own index plus shared handles to
/// *every* queue and states map (victims included).
struct ShardCtx {
    me: usize,
    queues: Vec<Arc<ShardQueue<QueuedFrame>>>,
    states: Vec<Arc<Mutex<BTreeMap<u64, StreamWorker>>>>,
    inflight: Arc<AtomicUsize>,
    instruments: Arc<FleetInstruments>,
    pool: Arc<DecoderPool>,
    work_stealing: bool,
    priority_lanes: bool,
}

/// Decides one frame with the stream's own session and counters; returns
/// nothing — every outcome is accounted in the worker's cell.
fn process_frame(ctx: &ShardCtx, worker: &mut StreamWorker, qf: QueuedFrame) {
    worker.cell.counters.queue_depth.dec();
    let emit = ctx.instruments.emit.as_ref();
    if let Some(emit) = emit {
        emit.queue_depth.dec();
    }
    let packet = qf.packet;
    let payload_len = packet.payload.len() as u64;
    // The decode consumes the payload; keep a copy only when a sink will
    // want the encoded bytes back (uplink wiring).
    let uplink_payload = worker.on_keep.as_ref().map(|_| packet.payload.clone());
    let outcome =
        worker
            .session(&ctx.pool)
            .observe(packet.index, packet.frame_type, packet.payload);
    let kept = matches!(outcome, EdgeOutcome::Kept(_));
    let counters = &worker.cell.counters;
    match outcome {
        EdgeOutcome::Kept(frame) => {
            counters.kept.inc();
            counters.kept_payload_bytes.add(payload_len);
            if let Some(emit) = emit {
                emit.kept.inc();
                emit.kept_payload_bytes.add(payload_len);
            }
            if let Some(sink) = &mut worker.on_keep {
                sink(
                    packet.index,
                    &frame,
                    uplink_payload.as_deref().unwrap_or(&[]),
                );
            }
        }
        EdgeOutcome::Dropped => {
            counters.dropped.inc();
            if let Some(emit) = emit {
                emit.dropped.inc();
            }
        }
        EdgeOutcome::Failed => {
            counters.failed.inc();
            if let Some(emit) = emit {
                emit.failed.inc();
            }
        }
    }
    counters.processed.inc();
    if let Some(emit) = emit {
        emit.processed.inc();
    }
    worker.keep_ewma = update_ewma(worker.keep_ewma, kept);
    ctx.inflight.fetch_sub(1, Ordering::AcqRel);
    #[cfg(not(feature = "model-check"))]
    ctx.instruments
        .latency
        .record(qf.enqueued.elapsed().as_micros() as u64);
}

/// The weight to install when releasing a lane (None leaves it alone, and
/// keeps round-robin exact when priority lanes are off).
fn lane_weight_update(ctx: &ShardCtx, worker: &StreamWorker) -> Option<u32> {
    ctx.priority_lanes.then(|| weight_of(worker.keep_ewma))
}

/// Flushes a finished stream on whatever thread delivered its
/// `LaneFinished`, recycling its decoder into the pool.
fn finish_stream(ctx: &ShardCtx, victim: usize, key: u64) {
    let Some(mut worker) = ctx.states[victim].lock().remove(&key) else {
        return;
    };
    let result = match std::mem::replace(&mut worker.state, EdgeState::Retired) {
        EdgeState::Active(mut edge) => {
            let r = edge.finish();
            ctx.pool.release(edge.into_decoder());
            r
        }
        // Never saw a frame: no decoder to recycle, still flush the
        // policy session (deferred policy failures surface here).
        EdgeState::Idle { mut session, .. } => session.finish(),
        EdgeState::Retired => Ok(()),
    };
    *worker.cell.finish_error.lock() = result.err().map(|e| e.to_string());
    worker.cell.done.store(true, Ordering::Release);
}

/// One guarded-pop service of shard `victim`'s queue by this worker.
/// Returns `false` only on `Empty` (nothing to do there right now).
fn serve_own(ctx: &ShardCtx) -> GuardedPop<()> {
    let queue = &ctx.queues[ctx.me];
    match queue.try_pop_guarded() {
        GuardedPop::Item(key, qf) => {
            let worker = ctx.states[ctx.me].lock().remove(&key);
            match worker {
                Some(mut worker) => {
                    process_frame(ctx, &mut worker, qf);
                    let weight = lane_weight_update(ctx, &worker);
                    ctx.states[ctx.me].lock().insert(key, worker);
                    queue.complete(key, weight);
                }
                None => {
                    // Unreachable by protocol (a lane's worker outlives the
                    // lane), but never strand the busy claim or the budget.
                    ctx.inflight.fetch_sub(1, Ordering::AcqRel);
                    queue.complete(key, None);
                }
            }
            GuardedPop::Item(key, ())
        }
        GuardedPop::LaneFinished(key) => {
            finish_stream(ctx, ctx.me, key);
            GuardedPop::LaneFinished(key)
        }
        GuardedPop::Empty => GuardedPop::Empty,
        GuardedPop::Shutdown => GuardedPop::Shutdown,
    }
}

/// Sweeps every other shard once, stealing at most one batch. Returns
/// `true` if any work was transferred (caller should re-check its own
/// queue before sweeping again).
fn steal_round(ctx: &ShardCtx) -> bool {
    let n = ctx.queues.len();
    for step in 1..n {
        let victim = (ctx.me + step) % n;
        match ctx.queues[victim].try_steal(STEAL_BATCH_MAX) {
            Steal::Batch { key, items } => {
                let taken = items.len() as u64;
                let worker = ctx.states[victim].lock().remove(&key);
                match worker {
                    Some(mut worker) => {
                        worker.cell.counters.stolen.add(taken);
                        for qf in items {
                            process_frame(ctx, &mut worker, qf);
                            // Home arrivals are fresh; the stolen batch is
                            // the victim's old backlog. Serving the home
                            // queue dry between stolen frames keeps this
                            // shard's own decision latency flat no matter
                            // how expensive the stolen work is.
                            while matches!(
                                serve_own(ctx),
                                GuardedPop::Item(..) | GuardedPop::LaneFinished(_)
                            ) {}
                        }
                        let weight = lane_weight_update(ctx, &worker);
                        ctx.states[victim].lock().insert(key, worker);
                        ctx.queues[victim].complete(key, weight);
                    }
                    None => {
                        // Unreachable by protocol; release reservations and
                        // the busy claim rather than wedging the lane.
                        ctx.inflight.fetch_sub(items.len(), Ordering::AcqRel);
                        ctx.queues[victim].complete(key, None);
                    }
                }
                ctx.instruments.stolen.add(taken);
                return true;
            }
            Steal::Contended => {
                ctx.instruments.steal_fail.inc();
            }
            Steal::Empty => {}
        }
    }
    false
}

/// One shard's worker loop: drain the home queue by weighted priority;
/// when it runs dry, sweep the neighbours for a stolen batch; only then
/// sleep. Exits when the home queue reports shutdown-and-drained.
fn shard_loop(ctx: &ShardCtx) {
    loop {
        match serve_own(ctx) {
            GuardedPop::Item(..) | GuardedPop::LaneFinished(_) => {}
            GuardedPop::Shutdown => return,
            GuardedPop::Empty => {
                if ctx.work_stealing && steal_round(ctx) {
                    continue;
                }
                ctx.queues[ctx.me].wait_for_work();
            }
        }
    }
}
