//! Priority derivation: per-stream keep rates → lane scheduling weights.
//!
//! The paper's economics say a camera that is currently *keeping* frames
//! is the one doing useful work — its survivors feed the cloud detector —
//! while a camera dropping everything can tolerate queueing. The fleet
//! turns that into scheduling policy: each stream tracks an exponentially
//! weighted moving average of its keep decisions (`kept → 1`, `dropped`/
//! `failed → 0`) and maps it onto its lane's weight in
//! `1..=`[`MAX_LANE_WEIGHT`]:
//!
//! ```text
//! ewma ← (1 − α)·ewma + α·kept          α = 1/8
//! weight = clamp(1 + round((MAX_LANE_WEIGHT − 1)·ewma), 1, MAX_LANE_WEIGHT)
//! ```
//!
//! so an all-dropping stream sits at weight 1, an all-keeping one at the
//! maximum, and the mapping is monotone: a higher keep rate never yields a
//! lower weight (the ordering property the fleet's proptests pin down).
//! Starvation is impossible regardless of the mixture — the
//! [`ShardQueue`](sieve_simnet::ShardQueue) aging term bounds any
//! non-empty lane's wait at `MAX_LANE_WEIGHT + lanes` pops.
//!
//! The EWMA seeds from the best prior available at admission
//! ([`initial_ewma`]): the stream's explicit priority hint, else its
//! target sampling rate, else 0.5 (uninformative).

use sieve_simnet::MAX_LANE_WEIGHT;

/// EWMA smoothing factor: 1/8 — about the last 8 decisions dominate, so a
/// camera going hot is promoted within a GOP, not within an epoch.
pub const KEEP_ALPHA: f64 = 0.125;

/// Folds one keep/drop decision into the running keep-rate estimate.
#[must_use]
pub fn update_ewma(ewma: f64, kept: bool) -> f64 {
    (1.0 - KEEP_ALPHA) * ewma + KEEP_ALPHA * f64::from(u8::from(kept))
}

/// Maps a keep-rate estimate in `[0, 1]` onto a lane weight in
/// `1..=MAX_LANE_WEIGHT`, monotonically. Out-of-range inputs clamp.
#[must_use]
pub fn weight_of(ewma: f64) -> u32 {
    let span = f64::from(MAX_LANE_WEIGHT - 1);
    let scaled = 1.0 + (span * ewma.clamp(0.0, 1.0)).round();
    // lint:allow(no-unwrap): value is clamped into 1..=MAX_LANE_WEIGHT
    (scaled as u32).clamp(1, MAX_LANE_WEIGHT)
}

/// The keep-rate prior a stream starts from: its admission-time hint
/// (explicit priority hint, else the policy's target rate), else 0.5.
#[must_use]
pub fn initial_ewma(hint: Option<f64>) -> f64 {
    hint.unwrap_or(0.5).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_toward_decisions() {
        let mut e = 0.5;
        for _ in 0..64 {
            e = update_ewma(e, true);
        }
        assert!(e > 0.99, "all-keep stream converges high: {e}");
        for _ in 0..64 {
            e = update_ewma(e, false);
        }
        assert!(e < 0.01, "all-drop stream converges low: {e}");
    }

    #[test]
    fn weight_endpoints_and_monotonicity() {
        assert_eq!(weight_of(0.0), 1);
        assert_eq!(weight_of(1.0), MAX_LANE_WEIGHT);
        assert_eq!(weight_of(-3.0), 1);
        assert_eq!(weight_of(7.0), MAX_LANE_WEIGHT);
        let mut prev = 0;
        for i in 0..=100 {
            let w = weight_of(f64::from(i) / 100.0);
            assert!(w >= prev, "weight_of must be monotone");
            prev = w;
        }
    }

    #[test]
    fn initial_ewma_prefers_hint_and_clamps() {
        assert_eq!(initial_ewma(Some(0.2)), 0.2);
        assert_eq!(initial_ewma(Some(9.0)), 1.0);
        assert_eq!(initial_ewma(None), 0.5);
    }
}
