//! Fleet observability: per-stream counters and aggregate snapshots, built
//! on the shared `sieve-stats` instruments.
//!
//! Per-stream counters are single-shard [`sieve_stats::Counter`]s (one
//! relaxed atomic — a stream is only ever touched by one shard worker at a
//! time), shared between the ingest path, the shard workers and snapshot
//! readers, so [`crate::Fleet::snapshot`] never stalls a decode. The four
//! terminal outcomes are accounted separately — in particular
//! [`StreamSnapshot::shed`] (admission refused a frame under load) is
//! *not* [`StreamSnapshot::dropped`] (the policy filtered a frame it saw):
//! conflating them would make an overloaded edge look like a
//! well-filtering one.
//!
//! Fleet-wide telemetry (steal traffic, the decision-latency histogram,
//! and — when [`crate::FleetConfig::stats`] is on — stage-level totals for
//! the time-series collector) lives in the fleet's
//! [`sieve_stats::Registry`] under the `"fleet"` stage, where a
//! [`sieve_stats::Collector`] or the `fleet_top` dashboard can sample it.

use std::sync::Arc;

use sieve_simnet::sync::atomic::{AtomicBool, Ordering};
use sieve_simnet::sync::Mutex;
use sieve_stats::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Stage};

use crate::registry::StreamId;

/// Shared per-stream counters (internal; read through [`StreamSnapshot`]).
#[derive(Debug, Default)]
pub(crate) struct StreamCounters {
    /// Frames the session decided on: kept + dropped + failed.
    pub processed: Counter,
    /// Frames the policy kept.
    pub kept: Counter,
    /// Frames the policy dropped (filtering).
    pub dropped: Counter,
    /// Frames the edge failed to process (decode errors).
    pub failed: Counter,
    /// Frames refused at admission (queue full or global budget exhausted).
    pub shed: Counter,
    /// Frames of this stream processed out of stolen batches (on a shard
    /// other than the stream's home).
    pub stolen: Counter,
    /// Encoded payload bytes of kept frames (transfer proxy).
    pub kept_payload_bytes: Counter,
    /// Frames currently queued for this stream.
    pub queue_depth: Gauge,
}

/// The shared cell the registry and the owning shard worker both hold for
/// one stream.
#[derive(Debug, Default)]
pub(crate) struct StreamCell {
    pub counters: StreamCounters,
    /// Set once the stream's session has been flushed.
    pub done: AtomicBool,
    /// The session's end-of-stream error, if it reported one.
    pub finish_error: Mutex<Option<String>>,
}

/// Stage-level totals mirrored into the stats registry on every decision,
/// present only when [`crate::FleetConfig::stats`] is on — the knob the
/// overhead benchmark flips to compare instrumented against
/// uninstrumented runs.
#[derive(Debug)]
pub(crate) struct StageEmit {
    pub processed: Arc<Counter>,
    pub kept: Arc<Counter>,
    pub dropped: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub shed: Arc<Counter>,
    pub kept_payload_bytes: Arc<Counter>,
    pub queue_depth: Arc<Gauge>,
}

impl StageEmit {
    fn in_stage(stage: &Stage) -> Self {
        Self {
            processed: stage.contended_counter("processed"),
            kept: stage.contended_counter("kept"),
            dropped: stage.contended_counter("dropped"),
            failed: stage.contended_counter("failed"),
            shed: stage.contended_counter("shed"),
            kept_payload_bytes: stage.contended_counter("kept_payload_bytes"),
            queue_depth: stage.gauge("queue_depth"),
        }
    }
}

/// Fleet-wide scheduler telemetry: pre-resolved handles into the fleet's
/// stats registry (`"fleet"` stage). Steal traffic and the
/// decision-latency histogram are always live — [`FleetSnapshot`] is built
/// from them; the broader stage totals are optional (see [`StageEmit`]).
#[derive(Debug)]
pub(crate) struct FleetInstruments {
    /// The registry every handle below resolves into.
    pub registry: Arc<Registry>,
    /// Frames processed out of *stolen* batches (work that moved shards).
    pub stolen: Arc<Counter>,
    /// Steal attempts abandoned because the victim's queue lock was
    /// contended (the owner always wins; the thief moves on).
    pub steal_fail: Arc<Counter>,
    /// Push→decision latency across all streams, microseconds.
    pub latency: Arc<Histogram>,
    /// Stage-level totals, when [`crate::FleetConfig::stats`] is on.
    pub emit: Option<StageEmit>,
}

impl FleetInstruments {
    /// Resolves the fleet's instruments in `registry` under the `"fleet"`
    /// stage.
    pub(crate) fn in_registry(registry: Arc<Registry>, stats: bool) -> Self {
        let stage = registry.stage("fleet");
        Self {
            stolen: stage.contended_counter("stolen"),
            steal_fail: stage.contended_counter("steal_fail"),
            latency: stage.histogram("decision_latency_us"),
            emit: stats.then(|| StageEmit::in_stage(&stage)),
            registry,
        }
    }
}

/// Decision-latency quantiles over every processed frame: the time from
/// [`crate::Fleet::push`] accepting a frame to its keep/drop decision
/// completing on a shard. Values are bucket upper bounds (≤ 2× coarse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Decisions sampled.
    pub count: u64,
    /// Median decision latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile decision latency, microseconds.
    pub p99_us: u64,
}

impl LatencySnapshot {
    /// `None` until at least one sample was recorded — and always `None`
    /// in model-check builds, which forbid wall time.
    pub(crate) fn of(histogram: &HistogramSnapshot) -> Option<Self> {
        if histogram.is_empty() {
            return None;
        }
        Some(Self {
            count: histogram.count(),
            p50_us: histogram.p50(),
            p99_us: histogram.p99(),
        })
    }
}

/// Point-in-time view of one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// The stream's fleet-assigned id.
    pub id: StreamId,
    /// The caller's label (camera name, dataset, ...).
    pub label: String,
    /// The selection policy's [`sieve_core::FrameSelector::name`].
    pub selector: &'static str,
    /// The requested sampling rate, for policies that have one.
    pub target_rate: Option<f64>,
    /// Frames the session decided on (kept + dropped + failed).
    pub processed: u64,
    /// Frames kept by policy.
    pub kept: u64,
    /// Frames dropped by policy (filtering).
    pub dropped: u64,
    /// Frames that failed to process (decode errors).
    pub failed: u64,
    /// Frames shed at admission — never seen by the policy.
    pub shed: u64,
    /// Frames processed away from the stream's home shard (stolen work).
    pub stolen: u64,
    /// Encoded payload bytes of kept frames.
    pub kept_payload_bytes: u64,
    /// Frames currently queued.
    pub queue_depth: u64,
    /// Whether the stream has left and its session was flushed.
    pub done: bool,
    /// The end-of-stream error the session reported, if any.
    pub finish_error: Option<String>,
}

impl StreamSnapshot {
    /// Fraction of processed frames the policy kept — the achieved
    /// sampling rate, comparable against [`StreamSnapshot::target_rate`].
    pub fn achieved_rate(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.kept as f64 / self.processed as f64
        }
    }
}

/// Sums over every stream of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetAggregate {
    /// Number of streams (live and finished).
    pub streams: usize,
    /// Total frames decided on.
    pub processed: u64,
    /// Total frames kept.
    pub kept: u64,
    /// Total frames dropped by policy.
    pub dropped: u64,
    /// Total processing failures.
    pub failed: u64,
    /// Total frames shed at admission.
    pub shed: u64,
    /// Total encoded payload bytes of kept frames.
    pub kept_payload_bytes: u64,
    /// Frames currently queued fleet-wide.
    pub queue_depth: u64,
}

/// Point-in-time view of the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// One entry per stream, in join order.
    pub streams: Vec<StreamSnapshot>,
    /// Sums over all streams.
    pub aggregate: FleetAggregate,
    /// Frames processed on a shard other than their home (stolen batches).
    pub stolen: u64,
    /// Steal attempts that lost the victim-lock race and moved on.
    pub steal_fail: u64,
    /// Push→decision latency quantiles; `None` until a frame is decided
    /// (and always `None` in model-check builds, which forbid wall time).
    pub decision_latency: Option<LatencySnapshot>,
}

impl FleetSnapshot {
    pub(crate) fn of(mut streams: Vec<StreamSnapshot>, instruments: &FleetInstruments) -> Self {
        streams.sort_by_key(|s| s.id);
        let mut aggregate = FleetAggregate {
            streams: streams.len(),
            ..FleetAggregate::default()
        };
        for s in &streams {
            aggregate.processed += s.processed;
            aggregate.kept += s.kept;
            aggregate.dropped += s.dropped;
            aggregate.failed += s.failed;
            aggregate.shed += s.shed;
            aggregate.kept_payload_bytes += s.kept_payload_bytes;
            aggregate.queue_depth += s.queue_depth;
        }
        Self {
            streams,
            aggregate,
            stolen: instruments.stolen.get(),
            steal_fail: instruments.steal_fail.get(),
            decision_latency: LatencySnapshot::of(&instruments.latency.snapshot()),
        }
    }
}

/// Final outcome of a fleet run, returned by [`crate::Fleet::shutdown`].
#[derive(Debug)]
pub struct FleetReport {
    /// The final per-stream and aggregate counters (all streams done).
    pub snapshot: FleetSnapshot,
    /// Wall-clock duration from fleet start to full drain.
    pub wall: std::time::Duration,
}

impl StreamCell {
    pub(crate) fn snapshot(
        &self,
        id: StreamId,
        label: &str,
        selector: &'static str,
        target_rate: Option<f64>,
    ) -> StreamSnapshot {
        let c = &self.counters;
        StreamSnapshot {
            id,
            label: label.to_string(),
            selector,
            target_rate,
            processed: c.processed.get(),
            kept: c.kept.get(),
            dropped: c.dropped.get(),
            failed: c.failed.get(),
            shed: c.shed.get(),
            stolen: c.stolen.get(),
            kept_payload_bytes: c.kept_payload_bytes.get(),
            queue_depth: c.queue_depth.get(),
            done: self.done.load(Ordering::Acquire),
            finish_error: self.finish_error.lock().clone(),
        }
    }
}
