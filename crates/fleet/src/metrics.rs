//! Fleet observability: per-stream counters and aggregate snapshots.
//!
//! Counters are lock-free atomics shared between the ingest path, the
//! shard workers and snapshot readers, so [`crate::Fleet::snapshot`] never
//! stalls a decode. The four terminal outcomes are accounted separately —
//! in particular [`StreamSnapshot::shed`] (admission refused a frame under
//! load) is *not* [`StreamSnapshot::dropped`] (the policy filtered a frame
//! it saw): conflating them would make an overloaded edge look like a
//! well-filtering one.

use sieve_simnet::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use sieve_simnet::sync::Mutex;

use crate::registry::StreamId;

/// Shared per-stream counters (internal; read through [`StreamSnapshot`]).
#[derive(Debug, Default)]
pub(crate) struct StreamCounters {
    /// Frames the session decided on: kept + dropped + failed.
    pub processed: AtomicU64,
    /// Frames the policy kept.
    pub kept: AtomicU64,
    /// Frames the policy dropped (filtering).
    pub dropped: AtomicU64,
    /// Frames the edge failed to process (decode errors).
    pub failed: AtomicU64,
    /// Frames refused at admission (queue full or global budget exhausted).
    pub shed: AtomicU64,
    /// Encoded payload bytes of kept frames (transfer proxy).
    pub kept_payload_bytes: AtomicU64,
    /// Frames currently queued for this stream.
    pub queue_depth: AtomicU64,
}

/// The shared cell the registry and the owning shard worker both hold for
/// one stream.
#[derive(Debug, Default)]
pub(crate) struct StreamCell {
    pub counters: StreamCounters,
    /// Set once the stream's session has been flushed.
    pub done: AtomicBool,
    /// The session's end-of-stream error, if it reported one.
    pub finish_error: Mutex<Option<String>>,
}

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, so the range spans 1 µs .. ~18 min.
const LATENCY_BUCKETS: usize = 40;

/// A lock-free histogram of decision latencies (push → decision) in
/// power-of-two microsecond buckets. Recording is one relaxed atomic
/// increment; quantiles are computed at snapshot time.
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.snapshot().map(|s| s.count))
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    pub(crate) fn record_micros(&self, micros: u64) {
        let bucket = (micros.max(1).ilog2() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The value at quantile `q` (0..=1), reported as the recording
    /// bucket's upper bound — a ≤ 2× overestimate, never an underestimate.
    fn quantile(&self, counts: &[u64], q: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i as u32 + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// `None` until at least one sample was recorded.
    pub(crate) fn snapshot(&self) -> Option<LatencySnapshot> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return None;
        }
        Some(LatencySnapshot {
            count,
            p50_us: self.quantile(&counts, 0.50),
            p99_us: self.quantile(&counts, 0.99),
        })
    }
}

/// Decision-latency quantiles over every processed frame: the time from
/// [`crate::Fleet::push`] accepting a frame to its keep/drop decision
/// completing on a shard. Values are bucket upper bounds (≤ 2× coarse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Decisions sampled.
    pub count: u64,
    /// Median decision latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile decision latency, microseconds.
    pub p99_us: u64,
}

/// Fleet-wide scheduler telemetry shared by every shard worker.
#[derive(Debug, Default)]
pub(crate) struct SchedStats {
    /// Frames processed out of *stolen* batches (work that moved shards).
    pub stolen: AtomicU64,
    /// Steal attempts abandoned because the victim's queue lock was
    /// contended (the owner always wins; the thief moves on).
    pub steal_fail: AtomicU64,
    /// Push→decision latency across all streams.
    pub latency: LatencyHistogram,
}

/// Point-in-time view of one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// The stream's fleet-assigned id.
    pub id: StreamId,
    /// The caller's label (camera name, dataset, ...).
    pub label: String,
    /// The selection policy's [`sieve_core::FrameSelector::name`].
    pub selector: &'static str,
    /// The requested sampling rate, for policies that have one.
    pub target_rate: Option<f64>,
    /// Frames the session decided on (kept + dropped + failed).
    pub processed: u64,
    /// Frames kept by policy.
    pub kept: u64,
    /// Frames dropped by policy (filtering).
    pub dropped: u64,
    /// Frames that failed to process (decode errors).
    pub failed: u64,
    /// Frames shed at admission — never seen by the policy.
    pub shed: u64,
    /// Encoded payload bytes of kept frames.
    pub kept_payload_bytes: u64,
    /// Frames currently queued.
    pub queue_depth: u64,
    /// Whether the stream has left and its session was flushed.
    pub done: bool,
    /// The end-of-stream error the session reported, if any.
    pub finish_error: Option<String>,
}

impl StreamSnapshot {
    /// Fraction of processed frames the policy kept — the achieved
    /// sampling rate, comparable against [`StreamSnapshot::target_rate`].
    pub fn achieved_rate(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.kept as f64 / self.processed as f64
        }
    }
}

/// Sums over every stream of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetAggregate {
    /// Number of streams (live and finished).
    pub streams: usize,
    /// Total frames decided on.
    pub processed: u64,
    /// Total frames kept.
    pub kept: u64,
    /// Total frames dropped by policy.
    pub dropped: u64,
    /// Total processing failures.
    pub failed: u64,
    /// Total frames shed at admission.
    pub shed: u64,
    /// Total encoded payload bytes of kept frames.
    pub kept_payload_bytes: u64,
    /// Frames currently queued fleet-wide.
    pub queue_depth: u64,
}

/// Point-in-time view of the whole fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// One entry per stream, in join order.
    pub streams: Vec<StreamSnapshot>,
    /// Sums over all streams.
    pub aggregate: FleetAggregate,
    /// Frames processed on a shard other than their home (stolen batches).
    pub stolen: u64,
    /// Steal attempts that lost the victim-lock race and moved on.
    pub steal_fail: u64,
    /// Push→decision latency quantiles; `None` until a frame is decided
    /// (and always `None` in model-check builds, which forbid wall time).
    pub decision_latency: Option<LatencySnapshot>,
}

impl FleetSnapshot {
    pub(crate) fn of(mut streams: Vec<StreamSnapshot>, sched: &SchedStats) -> Self {
        streams.sort_by_key(|s| s.id);
        let mut aggregate = FleetAggregate {
            streams: streams.len(),
            ..FleetAggregate::default()
        };
        for s in &streams {
            aggregate.processed += s.processed;
            aggregate.kept += s.kept;
            aggregate.dropped += s.dropped;
            aggregate.failed += s.failed;
            aggregate.shed += s.shed;
            aggregate.kept_payload_bytes += s.kept_payload_bytes;
            aggregate.queue_depth += s.queue_depth;
        }
        Self {
            streams,
            aggregate,
            stolen: sched.stolen.load(Ordering::Relaxed),
            steal_fail: sched.steal_fail.load(Ordering::Relaxed),
            decision_latency: sched.latency.snapshot(),
        }
    }
}

/// Final outcome of a fleet run, returned by [`crate::Fleet::shutdown`].
#[derive(Debug)]
pub struct FleetReport {
    /// The final per-stream and aggregate counters (all streams done).
    pub snapshot: FleetSnapshot,
    /// Wall-clock duration from fleet start to full drain.
    pub wall: std::time::Duration,
}

impl StreamCell {
    pub(crate) fn snapshot(
        &self,
        id: StreamId,
        label: &str,
        selector: &'static str,
        target_rate: Option<f64>,
    ) -> StreamSnapshot {
        let c = &self.counters;
        StreamSnapshot {
            id,
            label: label.to_string(),
            selector,
            target_rate,
            processed: c.processed.load(Ordering::Relaxed),
            kept: c.kept.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            kept_payload_bytes: c.kept_payload_bytes.load(Ordering::Relaxed),
            queue_depth: c.queue_depth.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Acquire),
            finish_error: self.finish_error.lock().clone(),
        }
    }
}
