//! # sieve-fleet — a multi-stream edge runtime
//!
//! The paper evaluates SiEVE one video at a time; its premise — cheap
//! metadata-driven selection at the edge — pays off when one edge box
//! serves *many* cameras at once. This crate is that serving-shaped
//! runtime:
//!
//! * **Admission** ([`Fleet::join`] / [`Fleet::leave`]) registers streams
//!   at runtime, each with its own selection policy and a label for the
//!   metrics; a `max_streams` cap bounds the control plane.
//! * **Sharded scheduling with work stealing**: a fixed pool of worker
//!   threads (shards); streams are hashed to shards and drained from
//!   bounded per-stream queues ([`sieve_simnet::ShardQueue`]) by weighted
//!   round-robin, where each lane's weight is *derived* from the
//!   stream's on-line keep rate ([`priority`]) and an aging term bounds
//!   starvation. An idle shard steals the front half of a hot
//!   neighbour's deepest lane instead of sleeping (the owner always wins
//!   the lock race; a busy-marked lane preserves per-stream FIFO and
//!   exactly-once processing under theft — see [`scheduler`]). Ingest
//!   never blocks: under load a frame is **shed** — a first-class
//!   [`Ingest::Shed`] outcome counted separately from a policy drop, so an
//!   overloaded edge is distinguishable from a well-filtering one. A
//!   global frame budget bounds fleet-wide queued memory.
//! * **Per-stream streaming selection**: every stream drives a
//!   [`sieve_core::EdgeSession`] — the same per-frame decision code the
//!   single-stream live pipeline uses — so any
//!   [`FrameSelector`](sieve_core::FrameSelector) policy deploys
//!   unchanged. Pair it with `sieve_filters::Budget::TargetRate` and each
//!   stream self-tunes its threshold on-line (EWMA + P² streaming
//!   quantile) to hit a requested sampling rate with no offline
//!   calibration pass — fraction budgets on live edges that never see the
//!   whole video.
//! * **Metrics** ([`Fleet::snapshot`] / [`FleetReport`]): per-stream and
//!   aggregate kept / dropped / shed / failed counts, queue depths,
//!   achieved sampling rate vs. target, plus scheduler health — frames
//!   `stolen`, failed steal attempts, and a push→decision latency
//!   histogram ([`LatencySnapshot`]). All of it is built on `sieve-stats`
//!   instruments living in a [`sieve_stats::Registry`] (private by
//!   default; share one via [`Fleet::with_registry`]), so a
//!   [`sieve_stats::Collector`] — or the `fleet_top` terminal dashboard —
//!   can sample the fleet's `"fleet"` stage as a live time series.
//!
//! Memory stays bounded no matter how many frames flow: queued encoded
//! frames ≤ `global_frame_budget`, and per-stream decode state is one
//! stateful decoder plus at most one previous frame — no stream ever
//! materialises a full decode buffer.
//!
//! ```
//! use sieve_core::IFrameSelector;
//! use sieve_fleet::{Fleet, FleetConfig, FramePacket, StreamConfig};
//! use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};
//!
//! // Two tiny camera feeds.
//! let res = Resolution::new(32, 32);
//! let video = EncodedVideo::encode(res, 30, EncoderConfig::new(3, 0),
//!                                  (0..9).map(|_| Frame::grey(res)));
//!
//! let fleet = Fleet::new(FleetConfig { shards: 2, ..FleetConfig::default() });
//! let cams: Vec<_> = (0..2)
//!     .map(|i| {
//!         let cfg = StreamConfig::new(format!("cam-{i}"), res, video.quality());
//!         fleet.join(&IFrameSelector::new(), cfg).unwrap()
//!     })
//!     .collect();
//! for (i, ef) in video.frames().iter().enumerate() {
//!     for &cam in &cams {
//!         fleet.push(cam, FramePacket::of(i, ef)).unwrap();
//!     }
//! }
//! let report = fleet.shutdown();
//! assert_eq!(report.snapshot.aggregate.kept, 6); // 3 I-frames × 2 streams
//! assert_eq!(report.snapshot.aggregate.shed, 0);
//! ```

pub mod metrics;
mod pool;
pub mod priority;
pub mod registry;
pub mod scheduler;

pub use metrics::{FleetAggregate, FleetReport, FleetSnapshot, LatencySnapshot, StreamSnapshot};
pub use registry::{FleetError, StreamConfig, StreamId};
pub use scheduler::{shard_of, Fleet, FleetConfig, FramePacket, Ingest, KeepSink, ShedCause};
