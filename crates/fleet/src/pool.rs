//! A slab pool of stream decoders, shared by every shard.
//!
//! A fleet admitting thousands of streams cannot afford one live
//! [`Decoder`] per *registered* stream: the decoder's quant tables and
//! (once frames flow) reference frame are the dominant per-stream
//! allocation. The fleet therefore defers decoder construction until a
//! stream's **first frame** actually arrives, and when a stream finishes
//! its decoder is [`Decoder::reset`] and parked here, slab-style, for the
//! next stream of the same geometry — so the number of live decoders
//! tracks the number of *actively decoding* streams, not the number of
//! registered ones, and stream churn stops allocating quant tables at all.
//!
//! Pools are keyed by `(resolution, quality)` (a decoder only fits streams
//! of its own geometry) and bounded per key; beyond the bound a released
//! decoder is simply dropped.

use std::collections::BTreeMap;

use sieve_simnet::sync::Mutex;
use sieve_video::{Decoder, Resolution};

/// Parked decoders a key can hold before further releases are dropped.
const PER_KEY_CAP: usize = 64;

type PoolKey = (u32, u32, u8);

fn key_of(resolution: Resolution, quality: u8) -> PoolKey {
    (resolution.width(), resolution.height(), quality)
}

/// The shared decoder slab; see the module docs. All methods are
/// thread-safe and O(log keys) outside the rare allocation.
#[derive(Debug, Default)]
pub(crate) struct DecoderPool {
    slabs: Mutex<BTreeMap<PoolKey, Vec<Decoder>>>,
    /// Decoders handed out that were reused from the slab (telemetry for
    /// tests; fresh constructions are `acquired - reused`).
    reused: Mutex<u64>,
}

impl DecoderPool {
    /// A decoder for a `resolution`/`quality` stream: a parked one if the
    /// slab has a fit, else freshly constructed.
    pub(crate) fn acquire(&self, resolution: Resolution, quality: u8) -> Decoder {
        let recycled = self
            .slabs
            .lock()
            .get_mut(&key_of(resolution, quality))
            .and_then(Vec::pop);
        match recycled {
            Some(d) => {
                *self.reused.lock() += 1;
                d
            }
            None => Decoder::new(resolution, quality),
        }
    }

    /// Parks a finished stream's decoder for reuse (reset first, so no
    /// pixel state leaks across streams). Beyond the per-key bound the
    /// decoder is dropped.
    pub(crate) fn release(&self, mut decoder: Decoder) {
        decoder.reset();
        let key = key_of(decoder.resolution(), decoder.quality());
        let mut slabs = self.slabs.lock();
        let slab = slabs.entry(key).or_default();
        if slab.len() < PER_KEY_CAP {
            slab.push(decoder);
        }
    }

    /// Decoders currently parked (across all keys).
    pub(crate) fn parked(&self) -> usize {
        self.slabs.lock().values().map(Vec::len).sum()
    }

    /// Acquisitions served from the slab instead of a fresh construction.
    pub(crate) fn reuses(&self) -> u64 {
        *self.reused.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_by_geometry() {
        let pool = DecoderPool::default();
        let res = Resolution::new(32, 32);
        let d = pool.acquire(res, 80);
        assert_eq!(pool.reuses(), 0);
        pool.release(d);
        assert_eq!(pool.parked(), 1);
        let _again = pool.acquire(res, 80);
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.parked(), 0);
        // A different geometry never reuses the parked decoder.
        let other = pool.acquire(res, 50);
        assert_eq!(other.quality(), 50);
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn release_is_bounded() {
        let pool = DecoderPool::default();
        let res = Resolution::new(16, 16);
        for _ in 0..(PER_KEY_CAP + 8) {
            pool.release(Decoder::new(res, 80));
        }
        assert_eq!(pool.parked(), PER_KEY_CAP);
    }
}
