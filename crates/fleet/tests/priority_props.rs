//! Property tests for the priority machinery behind the fleet's lanes:
//! the keep-rate → weight derivation ([`sieve_fleet::priority`]) and the
//! weighted-round-robin drain of [`sieve_simnet::ShardQueue`] it feeds.
//!
//! Two guarantees are checked over random inputs:
//!
//! 1. **No starvation.** Under *any* keep-rate mixture — hence any weight
//!    assignment the fleet can derive — every lane with queued items is
//!    served within `MAX_LANE_WEIGHT + lanes` pops. The aging term makes
//!    a passed-over lane's effective priority grow each pop, so no weight
//!    spread can hold a lane off longer than that bound.
//! 2. **Order fidelity.** Weights derived from stationary keep streams
//!    never invert the keep-rate ordering: a stream that keeps clearly
//!    more frames gets at least as heavy a lane, and a wide keep-rate gap
//!    forces a strictly heavier one.

use proptest::prelude::*;
use sieve_fleet::priority::{initial_ewma, update_ewma, weight_of, KEEP_ALPHA};
use sieve_simnet::{Popped, PushOutcome, ShardQueue, MAX_LANE_WEIGHT};

/// Feeds `update_ewma` a deterministic keep pattern of exact long-run rate
/// `rate` (Bresenham spacing: kept on pops that cross an integer boundary
/// of the accumulated rate) for `steps` decisions.
fn stationary_ewma(rate: f64, steps: usize) -> f64 {
    let mut ewma = initial_ewma(None);
    for i in 0..steps {
        let kept = ((i + 1) as f64 * rate).floor() > (i as f64 * rate).floor();
        ewma = update_ewma(ewma, kept);
    }
    ewma
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drain a queue of 2–5 lanes whose weights come straight from random
    /// keep rates: between two consecutive services of any lane that still
    /// holds items, at most `MAX_LANE_WEIGHT + lanes` pops may pass.
    #[test]
    fn wrr_never_starves_a_lane(
        rates in proptest::collection::vec(0.0f64..1.0, 2..6),
        depth in 2usize..6,
    ) {
        let lanes = rates.len();
        let q = ShardQueue::<u64>::new(depth);
        for (i, &rate) in rates.iter().enumerate() {
            let key = i as u64;
            prop_assert!(q.open_lane(key));
            prop_assert!(q.set_lane_weight(key, weight_of(rate)));
            for n in 0..depth {
                prop_assert_eq!(q.try_push(key, n as u64), PushOutcome::Queued);
            }
            prop_assert!(q.close_lane(key));
        }
        q.shutdown();

        let bound = MAX_LANE_WEIGHT as usize + lanes;
        let mut remaining = vec![depth; lanes];
        let mut last_served = vec![0usize; lanes];
        let mut finished = 0usize;
        let mut pops = 0usize;
        while let Some(popped) = q.pop() {
            match popped {
                Popped::Item(key, next) => {
                    pops += 1;
                    let lane = key as usize;
                    let waited = pops - last_served[lane];
                    prop_assert!(
                        waited <= bound,
                        "lane {lane} (weight {}) starved for {waited} pops \
                         (bound {bound}, rates {rates:?})",
                        weight_of(rates[lane]),
                    );
                    last_served[lane] = pops;
                    // Per-lane FIFO while we are at it.
                    prop_assert_eq!(next as usize, depth - remaining[lane]);
                    remaining[lane] -= 1;
                }
                Popped::LaneFinished(_) => finished += 1,
            }
        }
        prop_assert_eq!(finished, lanes, "each lane finished exactly once");
        prop_assert!(remaining.iter().all(|&r| r == 0), "every item delivered");
    }

    /// Weight derivation is monotone in the EWMA itself, stays in the
    /// valid lane-weight range, and one decision moves the EWMA by at
    /// most `KEEP_ALPHA`.
    #[test]
    fn weight_of_is_monotone_and_in_range(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(weight_of(lo) <= weight_of(hi));
        for w in [weight_of(a), weight_of(b)] {
            prop_assert!((1..=MAX_LANE_WEIGHT).contains(&w));
        }
        for kept in [false, true] {
            let step = (update_ewma(a, kept) - a).abs();
            prop_assert!(step <= KEEP_ALPHA + 1e-12, "one decision moved {step}");
        }
    }

    /// On stationary keep streams the derived priorities respect the
    /// keep-rate ordering: no inversion once the rates are separated by
    /// more than the EWMA's own ripple, and a wide gap is strict.
    #[test]
    fn priority_ordering_matches_keep_rate_ordering(
        low in 0.0f64..0.55,
        gap in 0.3f64..0.45,
        steps in 64usize..256,
    ) {
        let high = low + gap;
        let (e_low, e_high) = (stationary_ewma(low, steps), stationary_ewma(high, steps));
        // The EWMA tracks its input rate to within one decision's step.
        prop_assert!((e_low - low).abs() <= KEEP_ALPHA + 1e-9);
        prop_assert!((e_high - high).abs() <= KEEP_ALPHA + 1e-9);
        prop_assert!(
            weight_of(e_low) <= weight_of(e_high),
            "keep rates {low:.3} < {high:.3} but weights inverted: \
             {} > {}",
            weight_of(e_low),
            weight_of(e_high),
        );
        // A wide separation must be strict, not merely non-inverted.
        let (floor, ceiling) = (stationary_ewma(0.1, steps), stationary_ewma(0.9, steps));
        prop_assert!(weight_of(floor) < weight_of(ceiling));
    }
}
