//! Integration tests for the multi-stream fleet runtime: equivalence with
//! the single-stream live pipeline, 16-stream scheduling on a fixed pool,
//! shed-vs-drop accounting, and the on-line adaptive sampling-rate target.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sieve_core::{run_live_analysis, FrameSelector, IFrameSelector, LiveConfig};
use sieve_datasets::{stream_seed, DatasetId, DatasetScale, DatasetSpec};
use sieve_filters::{Budget, MseSelector};
use sieve_fleet::{Fleet, FleetConfig, FramePacket, Ingest, ShedCause, StreamConfig, StreamId};
use sieve_nn::OracleDetector;
use sieve_video::{EncodedVideo, EncoderConfig, FrameType};

fn encoded_jackson(frames: usize, gop: usize, scenecut: u16) -> EncodedVideo {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(gop, scenecut),
        video.frames().take(frames),
    )
}

/// Pushes every frame of `video` into `stream`, retrying shed frames until
/// they are accepted (a lossless feeder, for tests asserting exact
/// processed counts; note each refusal still bumps the stream's `shed`
/// counter — shedding accounts *events*, not lost frames).
fn feed_lossless(fleet: &Fleet, stream: StreamId, video: &EncodedVideo) {
    for (i, ef) in video.frames().iter().enumerate() {
        loop {
            match fleet.push(stream, FramePacket::of(i, ef)).expect("push") {
                Ingest::Queued => break,
                Ingest::Shed(_) => std::thread::yield_now(),
            }
        }
    }
}

/// A single-stream fleet with adaptation disabled must reproduce the
/// single-stream live pipeline's keep / drop / failed counts exactly —
/// metadata policy (I-frame seeking) and pixel policy (absolute-threshold
/// MSE), healthy stream and corrupt frame alike.
#[test]
fn single_stream_fleet_matches_run_live_analysis() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let healthy = encoded_jackson(160, 40, 60);
    let mut encoded = EncodedVideo::new(healthy.resolution(), healthy.fps(), healthy.quality());
    for ef in healthy.frames() {
        encoded.push(sieve_video::EncodedFrame {
            frame_type: ef.frame_type,
            data: ef.data.clone(),
        });
    }
    // A frame that will not decode, to exercise the typed failure path.
    encoded.push(sieve_video::EncodedFrame {
        frame_type: FrameType::P,
        data: Vec::new(),
    });

    type SelectorFactory = Box<dyn Fn() -> Box<dyn FrameSelector>>;
    let selectors: Vec<(&str, SelectorFactory)> = vec![
        ("sieve", Box::new(|| Box::new(IFrameSelector::new()))),
        (
            "mse-threshold",
            Box::new(|| Box::new(MseSelector::mse(Budget::Threshold(40.0)))),
        ),
    ];
    for (label, make) in selectors {
        let oracle = OracleDetector::for_video(&video);
        let mut live_selector = make();
        let live = run_live_analysis(&encoded, &mut live_selector, oracle, &LiveConfig::default())
            .expect("live run");

        // Both scheduler configurations must be bit-equivalent to the live
        // pipeline: thread-per-shard round robin, and the work-stealing /
        // priority-lane runtime (on a single shard its stealing loop never
        // finds a victim, and the lane-weight updates must not perturb a
        // lone stream's processing order).
        for stealing in [false, true] {
            // Queues sized past the whole stream: nothing can shed, so
            // every counter must match the live pipeline exactly.
            let fleet = Fleet::new(FleetConfig {
                shards: 1,
                queue_capacity: 256,
                global_frame_budget: 512,
                max_streams: 4,
                work_stealing: stealing,
                priority_lanes: stealing,
                ..FleetConfig::default()
            });
            let fleet_selector = make();
            let id = fleet
                .join(
                    &fleet_selector,
                    StreamConfig::new(label, encoded.resolution(), encoded.quality()),
                )
                .expect("join");
            feed_lossless(&fleet, id, &encoded);
            let report = fleet.shutdown();
            let s = &report.snapshot.streams[0];

            let label = format!("{label} (stealing={stealing})");
            assert_eq!(s.kept, live.report.delivered, "{label}: kept != delivered");
            assert_eq!(s.dropped, live.report.dropped, "{label}: dropped diverged");
            assert_eq!(s.failed, live.report.failed, "{label}: failed diverged");
            assert_eq!(s.shed, 0, "{label}: lossless feeder must not shed");
            assert_eq!(
                s.processed as usize,
                encoded.frame_count(),
                "{label}: every frame decided"
            );
            assert!(s.done, "{label}: stream flushed at shutdown");
            assert_eq!(report.snapshot.stolen, 0, "{label}: no victim on one shard");
        }
    }
}

/// 16 heterogeneous streams over a 4-worker pool: everything queued is
/// processed, per-stream accounting is intact, and the global budget bounds
/// in-flight frames throughout.
#[test]
fn sixteen_streams_on_a_fixed_pool() {
    let fleet = Fleet::new(FleetConfig {
        shards: 4,
        queue_capacity: 8,
        global_frame_budget: 64,
        max_streams: 32,
        ..FleetConfig::default()
    });
    let datasets = DatasetId::ALL;
    let kept_total = Arc::new(AtomicU64::new(0));
    let mut streams = Vec::new();
    for i in 0..16u64 {
        let spec = DatasetSpec::for_stream(datasets[i as usize % datasets.len()], 42, i);
        let video = spec.generate(DatasetScale::Tiny);
        let gop = 30 + 10 * (i as usize % 4); // staggered scenecut cadence
        let encoded = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(gop, 80),
            video.frames().take(60),
        );
        let kept_total = kept_total.clone();
        let id = fleet
            .join_with_sink(
                &IFrameSelector::new(),
                StreamConfig::new(format!("cam-{i}"), encoded.resolution(), encoded.quality()),
                Box::new(move |_, _, payload: &[u8]| {
                    assert!(!payload.is_empty(), "sink sees the encoded bytes");
                    kept_total.fetch_add(1, Ordering::Relaxed);
                }),
            )
            .expect("admission");
        streams.push((id, encoded));
    }

    // Concurrent feeders, as real cameras would be.
    std::thread::scope(|scope| {
        for (id, encoded) in &streams {
            scope.spawn(|| {
                feed_lossless(&fleet, *id, encoded);
                assert!(fleet.inflight() <= 64, "global budget exceeded");
                fleet.leave(*id).expect("leave");
            });
        }
    });
    let report = fleet.shutdown();
    assert_eq!(report.snapshot.streams.len(), 16);
    let agg = report.snapshot.aggregate;
    assert_eq!(agg.processed, 16 * 60, "all queued frames processed");
    assert_eq!(agg.failed, 0);
    assert_eq!(agg.kept + agg.dropped, agg.processed);
    assert_eq!(
        agg.kept,
        kept_total.load(Ordering::Relaxed),
        "keep sink saw every kept frame"
    );
    assert_eq!(agg.queue_depth, 0, "fully drained");
    for s in &report.snapshot.streams {
        assert!(s.done, "{}: not flushed", s.id);
        assert!(s.kept >= 1, "{}: at least the first I-frame", s.id);
    }
}

/// Overload sheds at admission: shed frames are counted per stream,
/// separately from policy drops, and never reach the policy.
#[test]
fn overload_sheds_and_accounts_separately() {
    let fleet = Fleet::new(FleetConfig {
        shards: 1,
        queue_capacity: 2,
        global_frame_budget: 4,
        max_streams: 8,
        ..FleetConfig::default()
    });
    let encoded = encoded_jackson(80, 20, 60);
    let id = fleet
        .join(
            &IFrameSelector::new(),
            StreamConfig::new("overloaded", encoded.resolution(), encoded.quality()),
        )
        .expect("join");
    let mut shed = 0u64;
    let mut queued = 0u64;
    for (i, ef) in encoded.frames().iter().enumerate() {
        match fleet.push(id, FramePacket::of(i, ef)).expect("push") {
            Ingest::Queued => queued += 1,
            Ingest::Shed(cause) => {
                assert!(matches!(
                    cause,
                    ShedCause::QueueFull | ShedCause::GlobalBudget
                ));
                shed += 1;
            }
        }
    }
    let report = fleet.shutdown();
    let s = &report.snapshot.streams[0];
    assert_eq!(s.shed, shed);
    assert_eq!(
        s.processed, queued,
        "exactly the queued frames were decided"
    );
    assert_eq!(s.kept + s.dropped + s.failed, s.processed);
    assert_eq!(
        s.shed + s.processed,
        encoded.frame_count() as u64,
        "every pushed frame is either shed or decided"
    );
}

/// Control-plane errors are typed: unknown streams, double leave, pushes
/// after leave, and the admission cap.
#[test]
fn control_plane_errors() {
    let fleet = Fleet::new(FleetConfig {
        shards: 1,
        queue_capacity: 4,
        global_frame_budget: 8,
        max_streams: 1,
        ..FleetConfig::default()
    });
    let encoded = encoded_jackson(10, 5, 60);
    let cfg = StreamConfig::new("only", encoded.resolution(), encoded.quality());
    let id = fleet
        .join(&IFrameSelector::new(), cfg.clone())
        .expect("join");
    assert!(matches!(
        fleet.join(&IFrameSelector::new(), cfg),
        Err(sieve_fleet::FleetError::FleetFull { max_streams: 1 })
    ));
    fleet.leave(id).expect("leave");
    assert!(matches!(
        fleet.leave(id),
        Err(sieve_fleet::FleetError::StreamClosed(_))
    ));
    assert!(matches!(
        fleet.push(id, FramePacket::of(0, &encoded.frames()[0])),
        Err(sieve_fleet::FleetError::StreamClosed(_))
    ));
    // The cap bounds *live* streams: leaving freed the slot, so a fleet
    // can churn join/leave indefinitely past its cap.
    for round in 0..3 {
        let next = fleet
            .join(
                &IFrameSelector::new(),
                StreamConfig::new(
                    format!("churn-{round}"),
                    encoded.resolution(),
                    encoded.quality(),
                ),
            )
            .unwrap_or_else(|e| panic!("churn round {round} refused: {e}"));
        fleet.leave(next).expect("leave churned stream");
    }
    let report = fleet.shutdown();
    assert_eq!(report.snapshot.streams.len(), 4, "all entries reported");
    assert!(report.snapshot.streams.iter().all(|s| s.done));
}

/// Dropping a fleet without `shutdown()` must not leak blocked workers:
/// the drop shuts the queues down and joins the shard threads.
#[test]
fn dropping_a_fleet_joins_its_workers() {
    let encoded = encoded_jackson(10, 5, 60);
    let fleet = Fleet::new(FleetConfig {
        shards: 2,
        queue_capacity: 4,
        global_frame_budget: 8,
        max_streams: 2,
        ..FleetConfig::default()
    });
    let id = fleet
        .join(
            &IFrameSelector::new(),
            StreamConfig::new("dropped", encoded.resolution(), encoded.quality()),
        )
        .expect("join");
    let _ = fleet.push(id, FramePacket::of(0, &encoded.frames()[0]));
    drop(fleet); // must return (workers joined), not hang
}

/// The acceptance criterion for on-line adaptation: an MSE stream under
/// `Budget::TargetRate(0.1)` — no `prepare`, no whole-video pass — lands
/// within ±20% of the requested sampling rate on the synthetic eval scene.
#[test]
fn adaptive_stream_hits_target_rate_online() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames(),
    );
    let target = 0.1;
    let fleet = Fleet::new(FleetConfig {
        shards: 2,
        queue_capacity: 16,
        global_frame_budget: 64,
        max_streams: 4,
        ..FleetConfig::default()
    });
    let selector = MseSelector::mse(Budget::TargetRate(target));
    let id = fleet
        .join(
            &selector,
            StreamConfig::new("adaptive", encoded.resolution(), encoded.quality())
                .with_target_rate(target),
        )
        .expect("join");
    feed_lossless(&fleet, id, &encoded);
    let report = fleet.shutdown();
    let s = &report.snapshot.streams[0];
    assert_eq!(s.target_rate, Some(target));
    assert_eq!(s.processed as usize, encoded.frame_count());
    assert_eq!(s.failed, 0);
    let achieved = s.achieved_rate();
    assert!(
        (achieved - target).abs() <= 0.2 * target,
        "achieved sampling rate {achieved:.4} outside ±20% of {target}"
    );
}

/// Per-stream seeds derived from `(fleet_seed, stream_id)` make fleet
/// frame content independent of scheduling: two fleets with different
/// shard counts see byte-identical streams.
#[test]
fn stream_seeds_are_scheduling_independent() {
    let a = DatasetSpec::for_stream(DatasetId::Venice, 7, 3);
    let b = DatasetSpec::for_stream(DatasetId::Venice, 7, 3);
    assert_eq!(a.seed, b.seed);
    assert_eq!(
        a.generate(DatasetScale::Tiny).frame(10),
        b.generate(DatasetScale::Tiny).frame(10)
    );
    let other_stream = DatasetSpec::for_stream(DatasetId::Venice, 7, 4);
    let other_fleet = DatasetSpec::for_stream(DatasetId::Venice, 8, 3);
    assert_ne!(a.seed, other_stream.seed);
    assert_ne!(a.seed, other_fleet.seed);
    assert_ne!(stream_seed(7, 3), stream_seed(3, 7), "mix is asymmetric");
}
