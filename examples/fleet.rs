//! Serving many cameras from one edge box: the `sieve-fleet` runtime.
//!
//! Sixteen heterogeneous synthetic streams — the five Table I datasets
//! cycled, mixed resolutions and frame rates, staggered scenecut cadences,
//! per-stream seeds derived from `(fleet_seed, stream_id)` so the run is
//! reproducible regardless of scheduling — multiplexed over a fixed pool
//! of shard workers with bounded per-stream queues. Each stream deploys
//! its own selection policy; the MSE streams use the on-line
//! `Budget::TargetRate` controller, which self-tunes a threshold (EWMA +
//! P² streaming quantile) to hit 10% sampling with *no* offline
//! calibration pass.
//!
//! The cameras push at an accelerated frame rate against a deliberately
//! small pool, so some frames arrive faster than the shards drain: those
//! are *shed* at admission — lost, counted per stream, and accounted
//! separately from policy drops — while round-robin draining keeps the
//! service fair across streams.
//!
//! Run with: `cargo run --release --example fleet [-- --streams N]`

use std::time::Duration;

use sieve::prelude::*;
use sieve_fleet::{Fleet, FleetConfig, FramePacket, StreamConfig};
use sieve_video::EncodedVideo;

const FLEET_SEED: u64 = 0xF1EE7;
const TARGET_RATE: f64 = 0.1;
const FRAMES_PER_STREAM: usize = 200;
/// Cameras replay faster than real time to exercise load shedding.
const PACE: f64 = 8.0;

fn streams_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--streams")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// One synthetic camera: an encoded stream, its policy, its frame pacing.
struct Camera {
    label: String,
    encoded: EncodedVideo,
    selector: Box<dyn FrameSelector + Send>,
    target_rate: Option<f64>,
    fps: u32,
}

fn main() {
    let n = streams_from_args();

    // Generate and encode the cameras before the fleet starts, so the
    // run's wall clock measures serving, not content synthesis.
    let cameras: Vec<Camera> = (0..n as u64)
        .map(|i| {
            let dataset = DatasetId::ALL[i as usize % DatasetId::ALL.len()];
            let mut spec = DatasetSpec::for_stream(dataset, FLEET_SEED, i);
            spec.fps = if i % 2 == 0 { 30 } else { 15 }; // mixed frame rates
            let video = spec.generate(DatasetScale::Tiny);
            let gop = 60 + 30 * (i as usize % 4); // staggered scenecut cadences
            let encoded = EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(gop, 120),
                video.frames().take(FRAMES_PER_STREAM),
            );
            let (selector, target_rate): (Box<dyn FrameSelector + Send>, Option<f64>) = match i % 3
            {
                0 => (Box::new(IFrameSelector::new()), None),
                1 => (
                    Box::new(MseSelector::mse(Budget::TargetRate(TARGET_RATE))),
                    Some(TARGET_RATE),
                ),
                _ => (Box::new(UniformSelector::new(10)), None),
            };
            Camera {
                label: format!("{dataset}#{i}"),
                encoded,
                selector,
                target_rate,
                fps: spec.fps,
            }
        })
        .collect();

    let fleet = Fleet::new(FleetConfig {
        shards: 2,
        queue_capacity: 8,
        global_frame_budget: 64,
        max_streams: n.max(16),
        ..FleetConfig::default()
    });
    println!(
        "fleet: {n} streams on {} shards, {} frames/stream at {PACE}x real \
         time, queues of {} (global budget {})\n",
        fleet.config().shards,
        FRAMES_PER_STREAM,
        fleet.config().queue_capacity,
        fleet.config().global_frame_budget,
    );

    // One feeder thread per camera, pacing frames at PACE× the camera's
    // real frame rate; a refused frame is simply lost, as it would be on a
    // saturated edge uplink.
    let ids: Vec<_> = cameras
        .iter()
        .map(|cam| {
            let mut config =
                StreamConfig::new(&*cam.label, cam.encoded.resolution(), cam.encoded.quality());
            if let Some(rate) = cam.target_rate {
                config = config.with_target_rate(rate);
            }
            fleet
                .join(cam.selector.as_ref(), config)
                .expect("fleet admission")
        })
        .collect();
    std::thread::scope(|scope| {
        for (cam, &id) in cameras.iter().zip(&ids) {
            let fleet = &fleet;
            let encoded = &cam.encoded;
            let interval = Duration::from_secs_f64(1.0 / (cam.fps as f64 * PACE));
            scope.spawn(move || {
                for (i, ef) in encoded.frames().iter().enumerate() {
                    let _ = fleet.push(id, FramePacket::of(i, ef)).expect("push");
                    std::thread::sleep(interval);
                }
                fleet.leave(id).expect("leave");
            });
        }
    });
    let report = fleet.shutdown();

    println!(
        "{:<18} {:>8} {:>6} {:>6} {:>6} {:>7}  rate (target)",
        "stream", "selector", "seen", "kept", "shed", "failed"
    );
    for s in &report.snapshot.streams {
        let rate = s
            .target_rate
            .map(|t| format!("{:.3} (target {t})", s.achieved_rate()))
            .unwrap_or_else(|| format!("{:.3}", s.achieved_rate()));
        println!(
            "{:<18} {:>8} {:>6} {:>6} {:>6} {:>7}  {}",
            s.label, s.selector, s.processed, s.kept, s.shed, s.failed, rate
        );
        assert!(s.done, "every stream must be flushed at shutdown");
    }
    let agg = report.snapshot.aggregate;
    println!(
        "\naggregate: {} frames decided in {:.2?} ({:.0} fps across the pool), \
         {} kept ({:.1}%), {} shed at admission, {} failed",
        agg.processed,
        report.wall,
        agg.processed as f64 / report.wall.as_secs_f64(),
        agg.kept,
        100.0 * agg.kept as f64 / agg.processed.max(1) as f64,
        agg.shed,
        agg.failed,
    );
    assert_eq!(agg.queue_depth, 0, "fleet fully drained");
    assert_eq!(
        agg.processed + agg.shed,
        (n * FRAMES_PER_STREAM) as u64,
        "every pushed frame is either decided or shed"
    );
    let worst = report
        .snapshot
        .streams
        .iter()
        .filter(|s| s.target_rate.is_some() && s.processed > 0)
        .map(|s| (s.achieved_rate() - TARGET_RATE).abs() / TARGET_RATE)
        .fold(0.0f64, f64::max);
    println!(
        "adaptive streams: worst on-line sampling-rate error {:.0}% of the \
         {TARGET_RATE} target, with no offline calibration pass",
        100.0 * worst
    );
}
