//! `fleet_top` — a top-like terminal dashboard over the observability
//! plane.
//!
//! Synthetic cameras (the Table I datasets cycled, adaptive MSE policies
//! on every third stream) push frames at an accelerated pace against a
//! deliberately small shard pool, and the dashboard renders, at a fixed
//! refresh, what `sieve-stats` sees: per-stream keep/shed/steal rates
//! (diffed between refreshes), a keep-rate sparkbar per stream, the fleet
//! decision-latency quantiles, the `adapt.*` counters the on-line rate
//! controllers emit into the global registry, and the `wan.*` panel —
//! every kept frame crosses a lossy [`sieve_net`] uplink, and the panel
//! shows the loss / FEC-recovery / unrecoverable-block rates plus the
//! feedback factor's trend. A [`sieve_stats::Collector`] ticks once per
//! refresh, so the run also yields a `stats.json` time series
//! (`--export PATH`).
//!
//! Run with: `cargo run --release --example fleet_top [-- --streams N]
//! [--once] [--refresh MS] [--export PATH] [--wan-loss P]`
//!
//! `--once` renders a single final frame after the run drains and skips
//! the ANSI screen handling — the headless mode CI smokes. In both modes
//! the run ends with conservation checks: every kept frame became exactly
//! one WAN block, and every block resolved to delivered, recovered or
//! lost.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sieve::prelude::*;
use sieve_fleet::{Fleet, FleetConfig, FleetSnapshot, FramePacket, StreamConfig, StreamId};
use sieve_net::{SharedUplink, Uplink, UplinkConfig, WanConfig};
use sieve_stats::Collector;
use sieve_video::EncodedVideo;

const FLEET_SEED: u64 = 0x70B;
const TARGET_RATE: f64 = 0.1;
/// Default packet-loss rate of the uplink every kept frame crosses.
const WAN_LOSS: f64 = 0.02;
const FRAMES_PER_STREAM: usize = 150;
/// Cameras replay faster than real time to exercise shedding and stealing.
const PACE: f64 = 20.0;
/// Keep-rate history depth behind each sparkbar.
const SPARK_WIDTH: usize = 24;

struct Args {
    streams: usize,
    once: bool,
    refresh: Duration,
    export: Option<String>,
    wan_loss: f64,
}

/// One synthetic camera: label, pre-encoded feed, policy, target rate.
type Camera = (
    String,
    EncodedVideo,
    Box<dyn FrameSelector + Send>,
    Option<f64>,
);

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    Args {
        streams: flag_value("--streams")
            .and_then(|s| s.parse().ok())
            .unwrap_or(8),
        once: argv.iter().any(|a| a == "--once"),
        refresh: Duration::from_millis(
            flag_value("--refresh")
                .and_then(|s| s.parse().ok())
                .unwrap_or(500),
        ),
        export: flag_value("--export"),
        wan_loss: flag_value("--wan-loss")
            .and_then(|s| s.parse().ok())
            .unwrap_or(WAN_LOSS),
    }
}

/// One row of glyphs for a history of values in `[0, 1]`.
fn sparkbar(history: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    history
        .iter()
        .map(|&v| GLYPHS[((v.clamp(0.0, 1.0) * 7.0).round()) as usize])
        .collect()
}

/// Per-second rate of a counter delta over `dt`.
fn rate(now: u64, then: u64, dt: Duration) -> f64 {
    let secs = dt.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        now.saturating_sub(then) as f64 / secs
    }
}

/// Everything one refresh frame renders, derived from two snapshots.
fn render(
    prev: &FleetSnapshot,
    now: &FleetSnapshot,
    dt: Duration,
    sparks: &mut std::collections::BTreeMap<StreamId, Vec<f64>>,
    collector: &Collector,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>8} {:>9} {:>8} {:>8} {:>8}  {:<24}\n",
        "stream", "seen", "keep/s", "shed/s", "steal/s", "rate", "keep history"
    ));
    for s in &now.streams {
        let before = prev.streams.iter().find(|p| p.id == s.id);
        let (p_proc, p_kept, p_shed, p_stolen) =
            before.map_or((0, 0, 0, 0), |p| (p.processed, p.kept, p.shed, p.stolen));
        let keep_rate = rate(s.kept, p_kept, dt);
        let decided = s.processed.saturating_sub(p_proc);
        let kept_frac = if decided == 0 {
            s.achieved_rate()
        } else {
            s.kept.saturating_sub(p_kept) as f64 / decided as f64
        };
        let history = sparks.entry(s.id).or_default();
        history.push(kept_frac);
        if history.len() > SPARK_WIDTH {
            history.remove(0);
        }
        out.push_str(&format!(
            "{:<16} {:>8} {:>9.1} {:>8.1} {:>8.1} {:>8.3}  {:<24}\n",
            s.label,
            s.processed,
            keep_rate,
            rate(s.shed, p_shed, dt),
            rate(s.stolen, p_stolen, dt),
            s.achieved_rate(),
            sparkbar(history),
        ));
    }
    let agg = &now.aggregate;
    out.push_str(&format!(
        "\nfleet: {} decided | {} kept | {} shed | queue {} | stolen {} (+{}/s) | steal_fail {}\n",
        agg.processed,
        agg.kept,
        agg.shed,
        agg.queue_depth,
        now.stolen,
        rate(now.stolen, prev.stolen, dt) as u64,
        now.steal_fail,
    ));
    match &now.decision_latency {
        Some(lat) => out.push_str(&format!(
            "latency: p50 {}us | p99 {}us over {} decisions\n",
            lat.p50_us, lat.p99_us, lat.count
        )),
        None => out.push_str("latency: no decisions yet\n"),
    }
    // The collector's cumulative series: p99 latency per tick, sparkbarred
    // against the worst tick seen, plus the adapt stage's counters.
    let points = collector.points();
    let p99s: Vec<u64> = points
        .iter()
        .filter_map(|p| p.histograms.get("fleet.decision_latency_us"))
        .map(|h| h.p99)
        .collect();
    let worst = p99s.iter().copied().max().unwrap_or(0).max(1);
    let p99_history: Vec<f64> = p99s.iter().map(|&v| v as f64 / worst as f64).collect();
    let tail = p99_history.len().saturating_sub(SPARK_WIDTH);
    out.push_str(&format!(
        "p99 trend (worst {}us): {}\n",
        worst,
        sparkbar(&p99_history[tail..])
    ));
    if let Some(point) = points.last() {
        let counter = |name: &str| point.counters.get(name).copied().unwrap_or(0);
        out.push_str(&format!(
            "adapt: {} scored | {} kept | {} forced keeps\n",
            counter("adapt.observed"),
            counter("adapt.kept"),
            counter("adapt.forced_keeps"),
        ));
        // The WAN panel: packet loss, FEC recoveries and unrecoverable
        // blocks as rates, plus the feedback factor's trend (the gauge is
        // in ppm; zero means no feedback quantum has closed yet).
        let blocks = counter("wan.blocks_sent");
        if blocks > 0 {
            let pct = |num: u64, den: u64| {
                if den == 0 {
                    0.0
                } else {
                    100.0 * num as f64 / den as f64
                }
            };
            out.push_str(&format!(
                "wan:   {} blocks | pkt loss {:.1}% | recovered {:.1}% | unrecoverable {:.1}% | marked {}\n",
                blocks,
                pct(counter("wan.packets_lost"), counter("wan.packets_sent")),
                pct(counter("wan.blocks_recovered"), blocks),
                pct(counter("wan.blocks_lost"), blocks),
                counter("wan.packets_marked"),
            ));
            let factors: Vec<f64> = points
                .iter()
                .filter_map(|p| p.gauges.get("wan.target_factor_ppm"))
                .filter(|&&ppm| ppm > 0)
                .map(|&ppm| ppm as f64 / 1e6)
                .collect();
            if let Some(&current) = factors.last() {
                let tail = factors.len().saturating_sub(SPARK_WIDTH);
                out.push_str(&format!(
                    "wan factor {current:.2}: {}\n",
                    sparkbar(&factors[tail..])
                ));
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let n = args.streams;

    let cameras: Vec<Camera> = (0..n as u64)
        .map(|i| {
            let dataset = DatasetId::ALL[i as usize % DatasetId::ALL.len()];
            let spec = DatasetSpec::for_stream(dataset, FLEET_SEED, i);
            let video = spec.generate(DatasetScale::Tiny);
            let encoded = EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(60 + 30 * (i as usize % 4), 120),
                video.frames().take(FRAMES_PER_STREAM),
            );
            let (selector, target): (Box<dyn FrameSelector + Send>, Option<f64>) = match i % 3 {
                0 => (Box::new(IFrameSelector::new()), None),
                1 => (
                    Box::new(MseSelector::mse(Budget::TargetRate(TARGET_RATE))),
                    Some(TARGET_RATE),
                ),
                _ => (Box::new(UniformSelector::new(10)), None),
            };
            (format!("{dataset}#{i}"), encoded, selector, target)
        })
        .collect();

    // Fleet, adapt controllers, the uplink and the collector all share
    // the global registry, so one sample sees every stage.
    let registry = sieve_stats::global().clone();
    let fleet = Fleet::with_registry(
        FleetConfig {
            shards: 2,
            queue_capacity: 8,
            global_frame_budget: 64,
            max_streams: n.max(8),
            ..FleetConfig::default()
        },
        registry.clone(),
    );
    let collector = Collector::new(registry);

    // Every kept frame crosses one shared lossy uplink; its feedback
    // drives the process-global WanSignal the adapt controllers read.
    sieve_core::adapt::wan_signal().reset();
    let uplink = Uplink::new(UplinkConfig::over(WanConfig::paper_wan(
        FLEET_SEED,
        args.wan_loss,
    )))
    .expect("uplink");
    let shared = SharedUplink::new(uplink);

    let ids: Vec<_> = cameras
        .iter()
        .enumerate()
        .map(|(idx, (label, encoded, selector, target))| {
            let mut config = StreamConfig::new(&**label, encoded.resolution(), encoded.quality());
            if let Some(rate) = target {
                config = config.with_target_rate(*rate);
            }
            // Golden-ratio sub-frame phases keep coincident I-frames from
            // piling into the uplink at the same virtual instant.
            let fps = f64::from(encoded.fps());
            let phase = (idx as f64 * 0.618_033_988_749_895).fract() / fps;
            fleet
                .join_with_sink(selector.as_ref(), config, shared.keep_sink(fps, phase))
                .expect("fleet admission")
        })
        .collect();

    let live_feeders = Arc::new(AtomicUsize::new(cameras.len()));
    let mut prev = fleet.snapshot();
    let mut prev_at = Instant::now();
    let mut sparks = std::collections::BTreeMap::new();
    std::thread::scope(|scope| {
        for ((_, encoded, _, _), &id) in cameras.iter().zip(&ids) {
            let fleet = &fleet;
            let live = live_feeders.clone();
            let interval = Duration::from_secs_f64(1.0 / (30.0 * PACE));
            scope.spawn(move || {
                for (i, ef) in encoded.frames().iter().enumerate() {
                    let _ = fleet.push(id, FramePacket::of(i, ef)).expect("push");
                    std::thread::sleep(interval);
                }
                fleet.leave(id).expect("leave");
                live.fetch_sub(1, Ordering::AcqRel);
            });
        }

        // The render loop runs on the main thread until every feeder is
        // done; `--once` skips intermediate frames and the ANSI clearing.
        loop {
            std::thread::sleep(args.refresh.min(Duration::from_millis(100)));
            let done = live_feeders.load(Ordering::Acquire) == 0;
            let now = fleet.snapshot();
            let dt = prev_at.elapsed();
            collector.tick();
            if !args.once {
                let frame = render(&prev, &now, dt, &mut sparks, &collector);
                print!("\x1b[2J\x1b[H{frame}");
            }
            prev = now;
            prev_at = Instant::now();
            if done {
                break;
            }
        }
    });

    // Drain fully, then render the authoritative final frame in both
    // modes (the one CI asserts on). Shutting the fleet down drops every
    // keep-sink, so the uplink can resolve its remaining blocks.
    let report = fleet.shutdown();
    shared.finish();
    collector.tick();
    let empty = FleetSnapshot {
        streams: Vec::new(),
        aggregate: Default::default(),
        stolen: 0,
        steal_fail: 0,
        decision_latency: None,
    };
    let mut final_sparks = std::collections::BTreeMap::new();
    print!(
        "{}",
        render(
            &empty,
            &report.snapshot,
            report.wall,
            &mut final_sparks,
            &collector
        )
    );
    println!(
        "\n{} streams, {} collector points, wall {:.2?}",
        report.snapshot.streams.len(),
        collector.len(),
        report.wall
    );

    if let Some(path) = &args.export {
        let json = serde_json::to_string_pretty(&collector.export()).expect("stats serialize");
        sieve_bench::stats_artifact::validate(&json).expect("export is schema-clean");
        std::fs::write(path, json + "\n").expect("write stats export");
        println!("exported {} points to {path}", collector.len());
    }

    let agg = &report.snapshot.aggregate;
    assert_eq!(agg.queue_depth, 0, "fleet fully drained");
    assert_eq!(
        agg.processed + agg.shed,
        (n * FRAMES_PER_STREAM) as u64,
        "every pushed frame is either decided or shed"
    );
    assert!(!collector.is_empty(), "collector must have sampled the run");

    // Frame/block conservation across the WAN: every kept frame became
    // exactly one block, and every block resolved to exactly one outcome.
    let wan = shared.counts();
    println!(
        "wan: {} blocks sent, {} delivered, {} recovered, {} lost over {} feedback quanta",
        wan.blocks_sent,
        wan.blocks_delivered,
        wan.blocks_recovered,
        wan.blocks_lost,
        wan.feedback_quanta
    );
    assert_eq!(
        wan.blocks_sent, agg.kept,
        "every kept frame must have crossed the WAN as exactly one block"
    );
    assert_eq!(
        wan.blocks_sent,
        wan.blocks_delivered + wan.blocks_recovered + wan.blocks_lost,
        "WAN block ledger must be conserved"
    );
}
