//! A *live* 3-tier pipeline: camera → edge → cloud, running for real.
//!
//! Unlike the discrete-event experiments, this example executes the actual
//! dataflow on OS threads with back-pressured channels (the NiFi role) and a
//! bandwidth-throttled edge→cloud link — through the one generic driver
//! `sieve_core::run_live_analysis`, which works for *any* `FrameSelector` +
//! `ObjectDetector` pair. It first deploys SiEVE (I-frame seeking at the
//! edge, trained CNN in the cloud), then swaps in a uniform-sampling edge at
//! the same analysis budget to show the unified path — the only difference
//! between deployments is the selector value.
//!
//! Run with: `cargo run --release --example edge_cloud_pipeline`

use sieve::prelude::*;
use sieve_video::EncodedVideo;

fn main() {
    // Dataset + semantic encoding.
    let spec = DatasetSpec::of(DatasetId::JacksonSquare);
    let video = spec.generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 200),
        video.frames(),
    );
    println!(
        "encoded {} frames, {} I-frames, {} KB",
        encoded.frame_count(),
        encoded.i_frame_indices().len(),
        encoded.total_bytes() / 1024
    );

    // Train the reference CNN on the camera's history (briefly).
    let detector = CnnDetector::train_on(
        &video,
        10,
        &TrainConfig {
            epochs: 3,
            lr: 0.05,
            seed: 42,
        },
    );
    println!(
        "trained reference CNN ({} params)",
        detector.model().param_count()
    );

    // The paper's live topology: 30 Mbps WAN, bounded channels.
    let config = LiveConfig::default();

    // Deployment 1 — SiEVE: the edge drops every non-I frame by container
    // metadata alone, decodes survivors independently, resizes them; the
    // cloud runs the CNN and stores (frame id, labels) tuples.
    let mut sieve_selector = IFrameSelector::new();
    let live = run_live_analysis(&encoded, &mut sieve_selector, detector, &config)
        .expect("live SiEVE run");
    report("SiEVE (I-frame edge + cloud CNN)", &video, &live);

    // Deployment 2 — same driver, uniform-sampling edge at the same
    // analysis budget, oracle cloud. One changed value, not new glue.
    let budget = encoded.i_frame_indices().len();
    let mut uniform = UniformSelector::matching_count(encoded.frame_count(), budget);
    let oracle = OracleDetector::for_video(&video);
    let live =
        run_live_analysis(&encoded, &mut uniform, oracle, &config).expect("live uniform run");
    report("Uniform edge + cloud oracle", &video, &live);
}

fn report(name: &str, video: &SyntheticVideo, live: &LiveAnalysis) {
    let acc = sieve_core::label_accuracy(video.labels(), &live.result.predicted);
    println!(
        "\n{name}\n  {} frames crossed the WAN ({} bytes), {} filtered at the edge\n  \
         wall {:.2?} -> {:.0} frames/s end to end\n  \
         per-frame label accuracy {:.1}%, sampling {:.2}%",
        live.report.delivered,
        live.report.delivered_bytes,
        live.report.dropped,
        live.report.wall,
        video.frame_count() as f64 / live.report.wall.as_secs_f64(),
        100.0 * acc,
        100.0 * live.result.sampling_rate(),
    );
    print!("  first tuples:");
    for (id, labels) in live.result.selected.iter().take(4) {
        print!(" ({id}, {labels})");
    }
    println!();
}
