//! A *live* 3-tier pipeline: camera → edge → cloud, running for real.
//!
//! Unlike the discrete-event experiments, this example executes the actual
//! dataflow on OS threads with back-pressured channels (the NiFi role) and a
//! bandwidth-throttled edge→cloud link: the camera stage emits encoded
//! frames, the edge stage seeks I-frames (dropping P-frames), decodes and
//! resizes them, and the cloud stage runs the trained CNN and collects
//! `(frame, labels)` tuples.
//!
//! Run with: `cargo run --release --example edge_cloud_pipeline`

use std::sync::{Arc, Mutex};

use sieve::prelude::*;
use sieve_nn::frame_to_tensor;
use sieve_video::{Decoder, EncodedVideo};

fn main() {
    // Dataset + semantic encoding.
    let spec = DatasetSpec::of(DatasetId::JacksonSquare);
    let video = spec.generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 200),
        video.frames(),
    );
    let res = encoded.resolution();
    let quality = encoded.quality();
    println!(
        "encoded {} frames, {} I-frames, {} KB",
        encoded.frame_count(),
        encoded.i_frame_indices().len(),
        encoded.total_bytes() / 1024
    );

    // Train the reference CNN on the camera's history (briefly).
    let detector = CnnDetector::train_on(
        &video,
        10,
        &TrainConfig {
            epochs: 3,
            lr: 0.05,
            seed: 42,
        },
    );
    println!("trained reference CNN ({} params)", detector.model().param_count());
    let detector = Arc::new(Mutex::new(detector));
    let results: Arc<Mutex<Vec<(u64, LabelSet)>>> = Arc::default();

    // Stage 1 (edge): I-frame seeker — drops every non-I frame by metadata
    // alone, decodes survivors, resizes them to the NN input.
    let edge = {
        LiveStage::compute("edge: seek+decode+resize", move |item: LiveItem| {
            // tag carries the frame type: 0 = I, 1 = P (the container
            // metadata); payload is the encoded frame.
            if item.tag != 0 {
                return None; // P-frame: filtered at the edge
            }
            let frame = Decoder::decode_iframe(res, quality, &item.payload)
                .expect("I-frame decode");
            let small = frame.resize(Resolution::new(32, 32));
            let mut bytes = Vec::with_capacity(small.raw_bytes());
            bytes.extend_from_slice(small.y().data());
            bytes.extend_from_slice(small.u().data());
            bytes.extend_from_slice(small.v().data());
            Some(LiveItem {
                id: item.id,
                payload: bytes,
                tag: 0,
            })
        })
    };

    // Stage 2: the 30 Mbps WAN.
    let wan = LiveStage::link("edge->cloud WAN (30 Mbps)", 30.0e6);

    // Stage 3 (cloud): CNN inference, storing (frame id, labels).
    let cloud = {
        let detector = detector.clone();
        let results = results.clone();
        LiveStage::compute("cloud: NN inference", move |item: LiveItem| {
            // Rebuild the small frame from raw planes.
            let small_res = Resolution::new(32, 32);
            let (ylen, clen) = (small_res.luma_len(), small_res.chroma_len());
            let y = sieve_video::Plane::from_data(32, 32, item.payload[..ylen].to_vec());
            let u =
                sieve_video::Plane::from_data(16, 16, item.payload[ylen..ylen + clen].to_vec());
            let v = sieve_video::Plane::from_data(
                16,
                16,
                item.payload[ylen + clen..ylen + 2 * clen].to_vec(),
            );
            let frame = Frame::from_planes(small_res, y, u, v);
            let tensor = frame_to_tensor(&frame);
            let _ = tensor; // the detector resizes internally from the frame
            let labels = detector.lock().unwrap().detect(item.id as usize, &frame);
            results.lock().unwrap().push((item.id, labels));
            Some(item)
        })
    };

    // Feed: every encoded frame, tagged with its type.
    let items: Vec<LiveItem> = encoded
        .frames()
        .iter()
        .enumerate()
        .map(|(i, ef)| LiveItem {
            id: i as u64,
            payload: ef.data.clone(),
            tag: match ef.frame_type {
                FrameType::I => 0,
                FrameType::P => 1,
            },
        })
        .collect();
    let total = items.len() as u64;

    let report = run_live(vec![edge, wan, cloud], items, 16);
    println!(
        "\nlive run: {} frames in {:.2?} -> {:.0} frames/s end to end",
        total,
        report.wall,
        total as f64 / report.wall.as_secs_f64()
    );
    println!(
        "  edge filtered out {} P-frames; {} I-frames crossed the WAN ({} bytes)",
        report.dropped, report.delivered, report.delivered_bytes
    );

    let results = results.lock().unwrap();
    println!("  cloud stored {} (frame, labels) tuples; first few:", results.len());
    for (id, labels) in results.iter().take(5) {
        println!("    frame {id:4}: {labels}");
    }
}
