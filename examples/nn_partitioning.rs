//! NN layer partitioning across edge and cloud (Neurosurgeon-style).
//!
//! The paper's NN-deployment service can place all layers on one tier or
//! split the network at a layer boundary. This example profiles the
//! reference CNN and shows how the optimal split moves with WAN bandwidth:
//! fat links favour shipping raw inputs to the fast cloud, thin links favour
//! computing on the edge until activations shrink.
//!
//! Run with: `cargo run --release --example nn_partitioning`

use sieve::prelude::*;
use sieve_nn::{split_costs, Tensor};

fn main() {
    let model = reference_model(7);
    let input_shape = [3usize, 32, 32];
    println!(
        "reference CNN: {} layers, {} parameters, {:.1} MFLOPs/inference\n",
        model.len(),
        model.param_count(),
        model.total_flops(&input_shape) as f64 / 1e6
    );

    // Per-layer profile.
    let shapes = model.activation_shapes(&input_shape);
    let flops = model.layer_flops(&input_shape);
    let bytes = model.activation_bytes(&input_shape);
    println!(
        "{:<4} {:<10} {:>12} {:>16}",
        "idx", "layer", "kFLOPs", "activation (B)"
    );
    println!("{:<4} {:<10} {:>12} {:>16}", "-", "input", "-", bytes[0]);
    for (i, layer) in model.layers().iter().enumerate() {
        println!(
            "{:<4} {:<10} {:>12} {:>16}",
            i,
            layer.name(),
            flops[i] / 1000,
            bytes[i + 1]
        );
    }
    let _ = shapes;

    // Sweep WAN bandwidth and report the best split.
    println!(
        "\n{:>10}  {:>5}  {:>12}  {:>10}",
        "WAN", "split", "transfer (B)", "latency"
    );
    for mbps in [1.0, 5.0, 30.0, 100.0, 1000.0] {
        let tiers = TierSpec {
            bandwidth_bytes_per_sec: mbps * 1e6 / 8.0,
            ..TierSpec::paper_default()
        };
        let best = best_split(&model, &input_shape, &tiers);
        println!(
            "{:>7} Mb/s  {:>5}  {:>12}  {:>8.1} ms",
            mbps,
            best.split,
            best.transfer_bytes,
            best.total_secs() * 1e3
        );
    }

    // Show that a split execution produces the same output as monolithic.
    let mut model = reference_model(7);
    let input = Tensor::he_init(&input_shape, 32, 123);
    let full = model.forward(&input);
    let tiers = TierSpec::paper_default();
    let best = best_split(&reference_model(7), &input_shape, &tiers);
    let edge_out = model.forward_to(best.split, &input);
    let cloud_out = model.forward_from(best.split, &edge_out);
    assert_eq!(full, cloud_out);
    println!(
        "\nsplit execution at layer {} verified: edge half ships {} bytes, \
         output identical to monolithic inference",
        best.split, best.transfer_bytes
    );
    let costs = split_costs(&reference_model(7), &input_shape, &tiers);
    let worst = costs
        .iter()
        .map(|c| c.total_secs())
        .fold(f64::MIN, f64::max);
    println!(
        "best split is {:.1}x faster than the worst split point",
        worst / best.total_secs()
    );
}
