//! Quickstart: the whole SiEVE idea in ~60 lines.
//!
//! Generates a small labelled surveillance feed, encodes it twice (default
//! x264-style parameters vs semantic parameters), and shows what the I-frame
//! seeker gets out of each: the semantic encoding labels almost every frame
//! correctly while decoding only a few percent of them.
//!
//! Run with: `cargo run --release --example quickstart`

use sieve::prelude::*;

fn main() {
    // A tiny rendition of the paper's "Jackson town square" feed: vehicles
    // crossing a fixed-angle camera, with per-frame ground-truth labels.
    let spec = DatasetSpec::of(DatasetId::JacksonSquare);
    let video = spec.generate(DatasetScale::Tiny);
    println!(
        "dataset: {} ({} frames @ {} fps, {}, {} events)",
        spec.id,
        video.frame_count(),
        video.fps(),
        video.resolution(),
        video.events().len()
    );

    // Encode with the default parameters the paper quotes (GOP 250,
    // scenecut 40) and with semantically tuned ones (long GOP, sensitive
    // scenecut).
    let semantic = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 200),
        video.frames(),
    );
    let default = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::x264_default(),
        video.frames(),
    );
    for (name, encoded) in [
        ("default  (GOP 250, sc 40)", &default),
        ("semantic (GOP 300, sc 200)", &semantic),
    ] {
        let stats = BitstreamStats::from_video(encoded);

        // SiEVE's analysis path: scan metadata, decode I-frames only, run
        // the NN on those, propagate labels everywhere else.
        let mut nn = OracleDetector::for_video(&video);
        let result = analyze_sieve(encoded, &mut nn).expect("analysis");
        let quality = score_encoding(encoded, video.labels());

        println!(
            "\n{name}\n  i-frames: {:4} / {} ({:.2}% sampled)\n  \
             stream: {} KB\n  per-frame label accuracy: {:.1}%\n  \
             F1(accuracy, filtering): {:.3}\n  predicted events: {}",
            stats.i_frames,
            stats.frame_count,
            100.0 * quality.sampling_rate,
            stats.total_bytes / 1024,
            100.0 * quality.accuracy,
            quality.f1,
            result.events().len(),
        );
    }

    println!(
        "\nThe semantic configuration reaches near-perfect accuracy while \
         decoding only the I-frames it placed on event boundaries."
    );

    // Every baseline runs through the same generic driver: swap the
    // selector, keep everything else.
    let encoded = semantic;
    let budget = encoded.i_frame_indices().len().max(1);
    let fraction = budget as f64 / encoded.frame_count().max(1) as f64;
    let mut selectors: Vec<Box<dyn FrameSelector>> = vec![
        Box::new(IFrameSelector::new()),
        Box::new(UniformSelector::matching_count(
            encoded.frame_count(),
            budget,
        )),
        Box::new(MseSelector::mse(Budget::Fraction(fraction))),
    ];
    println!("\nall baselines, one driver (matched to {budget} analysed frames):");
    for selector in &mut selectors {
        let mut nn = OracleDetector::for_video(&video);
        let result = analyze(&encoded, selector, &mut nn).expect("analysis");
        let quality = score_selection(
            video.labels(),
            &result.selected.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
        );
        println!(
            "  {:8} accuracy {:.1}%  sampling {:.2}%",
            selector.name(),
            100.0 * quality.accuracy,
            100.0 * quality.sampling_rate,
        );
    }
}
