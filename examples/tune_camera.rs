//! Offline per-camera tuning (the paper's Fig 2 procedure).
//!
//! For each labelled dataset, splits the feed into a training half and an
//! evaluation half, grid-searches (GOP size, scenecut) on the training half,
//! stores the best configuration in a per-camera lookup table (JSON), and
//! reports train vs eval quality — demonstrating that parameters tuned on
//! history generalize to future video from the same camera.
//!
//! Run with: `cargo run --release --example tune_camera`

use sieve::prelude::*;
use sieve_video::EncodedVideo;

fn main() {
    let grid = ConfigGrid {
        gop_sizes: vec![100, 300, 600],
        scenecuts: vec![40, 150, 250, 350],
    };
    println!(
        "grid: {} configurations (GOP {:?} x scenecut {:?})\n",
        grid.len(),
        grid.gop_sizes,
        grid.scenecuts
    );

    let mut table = LookupTable::new();
    for id in DatasetId::LABELLED {
        let spec = DatasetSpec::of(id);
        let video = spec.generate(DatasetScale::Tiny);
        let n = video.frame_count();
        let half = n / 2;

        // Train on the first half.
        let train_labels = &video.labels()[..half];
        let outcome = tune(video.resolution(), video.fps(), &grid, train_labels, || {
            video.frames().take(half)
        });
        let best = outcome.best;
        println!(
            "{id}: best = GOP {}, scenecut {} | train acc {:.1}% fr {:.1}% F1 {:.3}",
            best.config.gop_size,
            best.config.scenecut,
            100.0 * best.quality.accuracy,
            100.0 * best.quality.filtering_rate,
            best.quality.f1
        );

        // Evaluate on the unseen second half.
        let eval_frames = (half..n).map(|i| video.frame(i));
        let eval_video =
            EncodedVideo::encode(video.resolution(), video.fps(), best.config, eval_frames);
        let eval_quality = score_encoding(&eval_video, &video.labels()[half..]);
        println!(
            "{:width$}  eval  acc {:.1}% fr {:.1}% F1 {:.3}",
            "",
            100.0 * eval_quality.accuracy,
            100.0 * eval_quality.filtering_rate,
            eval_quality.f1,
            width = id.to_string().len() + 1
        );

        table.insert(id.to_string(), best.config);
    }

    // Persist the lookup table the way the operator's tooling would.
    let path = std::env::temp_dir().join("sieve_lookup.json");
    let file = std::fs::File::create(&path).expect("create lookup file");
    table.save(file).expect("save lookup table");
    println!(
        "\nlookup table with {} cameras written to {}",
        table.len(),
        path.display()
    );

    // And read it back, as the online stage does.
    let loaded =
        LookupTable::load(std::fs::File::open(&path).expect("open")).expect("load lookup table");
    assert_eq!(loaded, table);
    for (camera, cfg) in loaded.iter() {
        println!(
            "  {camera}: GOP {}, scenecut {}",
            cfg.gop_size, cfg.scenecut
        );
    }
}
