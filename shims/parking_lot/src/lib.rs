//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns a guard directly instead of a `Result`, recovering the
//! inner value if a previous holder panicked.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_counts_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
