//! Offline stand-in for `criterion`.
//!
//! A minimal benchmarking harness exposing the API the workspace's benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], `criterion_group!`, and `criterion_main!`.
//! Reports the median per-iteration wall time; no statistics, plots or
//! comparisons.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup costs are amortized (accepted for API compatibility;
/// the shim runs one routine call per measured batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark timing state.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine`, recording `sample_count` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many samples to record per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget (accepted for API compatibility; the
    /// shim's cost is `sample_size` iterations).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (one warm-up call is always made).
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark and prints its median iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        match b.median() {
            Some(median) => println!("bench {name:<40} median {median:>12.3?}"),
            None => println!("bench {name:<40} (no samples)"),
        }
        self
    }
}

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
