//! Offline stand-in for `criterion`.
//!
//! A minimal benchmarking harness exposing the API the workspace's benches
//! use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], `criterion_group!`, and `criterion_main!`.
//!
//! Measurement is dispersion-aware: every benchmark runs a fixed warmup
//! pass (unrecorded iterations that fault in code, caches and allocator
//! state) before sampling, and reports the **median ± MAD** (median
//! absolute deviation) over the recorded samples — a robust location /
//! spread pair that one scheduling hiccup cannot corrupt. No plots or
//! cross-run comparisons.

use std::time::{Duration, Instant};

/// Unrecorded iterations run before sampling starts.
const WARMUP_ITERS: usize = 2;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched setup costs are amortized (accepted for API compatibility;
/// the shim runs one routine call per measured batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark timing state.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine` after a fixed warmup pass, recording `sample_count`
    /// samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup` after a fixed warmup
    /// pass; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    /// Robust location and spread of the recorded samples: the median and
    /// the median absolute deviation around it.
    fn median_and_mad(&mut self) -> Option<(Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let mut deviations: Vec<Duration> =
            self.samples.iter().map(|&s| s.abs_diff(median)).collect();
        deviations.sort();
        let mad = deviations[deviations.len() / 2];
        Some((median, mad))
    }
}

/// Robust summary of one benchmark's recorded samples, for programmatic
/// consumers (benchmark binaries that serialize results to disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Estimate {
    /// Median iteration time over the recorded samples.
    pub median: Duration,
    /// Median absolute deviation around the median.
    pub mad: Duration,
    /// Number of recorded samples.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many samples to record per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget (accepted for API compatibility; the
    /// shim's cost is `sample_size` iterations plus the fixed warmup).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (accepted for API compatibility; the shim
    /// always runs a fixed warmup pass before sampling).
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark and prints its median ± MAD iteration
    /// time over the recorded samples.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_estimate(name, f);
        self
    }

    /// Like [`Criterion::bench_function`], but also returns the
    /// median ± MAD [`Estimate`] so callers can serialize it.
    pub fn bench_estimate<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> Option<Estimate> {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let samples = b.samples.len();
        match b.median_and_mad() {
            Some((median, mad)) => {
                println!(
                    "bench {name:<40} median {median:>12.3?} ± {mad:>10.3?} (MAD, n={samples})"
                );
                Some(Estimate {
                    median,
                    mad,
                    samples,
                })
            }
            None => {
                println!("bench {name:<40} (no samples)");
                None
            }
        }
    }
}

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_iterations_are_not_recorded() {
        let mut b = Bencher::new(5);
        let mut calls = 0usize;
        b.iter(|| calls += 1);
        assert_eq!(calls, 5 + WARMUP_ITERS);
        assert_eq!(b.samples.len(), 5, "only sampled iterations recorded");
    }

    #[test]
    fn batched_setup_runs_per_warmup_and_sample() {
        let mut b = Bencher::new(3);
        let mut setups = 0usize;
        b.iter_batched(
            || {
                setups += 1;
            },
            |()| {},
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 3 + WARMUP_ITERS);
    }

    #[test]
    fn median_and_mad_are_robust_to_one_outlier() {
        let mut b = Bencher::new(0);
        for ms in [10u64, 10, 11, 9, 500] {
            b.samples.push(Duration::from_millis(ms));
        }
        let (median, mad) = b.median_and_mad().expect("samples recorded");
        assert_eq!(median, Duration::from_millis(10));
        assert!(
            mad <= Duration::from_millis(1),
            "MAD ignores the outlier: {mad:?}"
        );
    }

    #[test]
    fn empty_bencher_reports_no_samples() {
        let mut b = Bencher::new(0);
        assert_eq!(b.median_and_mad(), None);
    }

    #[test]
    fn bench_estimate_exposes_median_and_mad() {
        let mut c = Criterion::default().sample_size(4);
        let est = c
            .bench_estimate("spin", |b| {
                b.iter(|| {
                    let mut x = 0u64;
                    for i in 0..1000u64 {
                        x = x.wrapping_add(i);
                    }
                    black_box(x)
                })
            })
            .expect("samples were recorded");
        assert_eq!(est.samples, 4);
        assert!(est.median > Duration::ZERO);
    }
}
