//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` over
//! `std::sync::mpsc::sync_channel`. Only the blocking send/recv/iterate
//! surface the workspace uses is exposed; `select!` and the lock-free
//! collections are out of scope.

/// Multi-producer single-consumer channels with bounded capacity.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned when the sending side has hung up.
    pub type RecvError = mpsc::RecvError;

    /// The sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (back-pressure) or the
        /// receiver is gone.
        ///
        /// # Errors
        ///
        /// Returns the message back if the receiving side disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        ///
        /// # Errors
        ///
        /// Fails once every sender is gone and the buffer is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocking iterator that ends when all senders are gone.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates a channel that holds at most `capacity` in-flight messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn backpressure_and_drain() {
        let (tx, rx) = bounded::<u64>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u64> = rx.iter().collect();
        producer.join().expect("no panic");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u64>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
