//! Offline stand-in for `proptest`.
//!
//! Implements the macro surface the workspace's property tests use —
//! `proptest!` with `#![proptest_config(...)]`, range and tuple strategies,
//! `proptest::collection::vec`, and the `prop_assert*` macros — on top of a
//! deterministic per-test RNG. Failing cases panic with the drawn inputs
//! printed; there is no shrinking.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic generator driving each property test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// The next 64 uniform bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}
impl_strategy_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}
impl_strategy_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec()`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min).max(1) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports property tests start with.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strategy), &mut rng),)+);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 1u64..100, b in -50i64..50, f in 0.5f64..2.0) {
            prop_assert!((1..100).contains(&a));
            prop_assert!((-50..50).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, 10u32..14)) {
            let (x, y) = pair;
            prop_assert!(x < 4 && (10..14).contains(&y));
        }
    }

    #[test]
    fn deterministic_rng() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
