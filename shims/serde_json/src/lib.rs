//! Offline stand-in for `serde_json`.
//!
//! Serializes the `serde` shim's [`Value`] tree to JSON text and parses JSON
//! text back. Supports everything the workspace round-trips: objects,
//! arrays, strings with escapes, exact u64/i64 integers, and floats.

use std::io::{Read, Write};

pub use serde::{Map, Number, Value};

/// Error produced by serialization or deserialization.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self(e.to_string())
    }
}

// --- serialization ---------------------------------------------------------

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the value model this shim supports; the `Result` mirrors
/// the real API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the value model this shim supports.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Writes compact JSON into `writer`.
///
/// # Errors
///
/// Propagates writer failures.
pub fn to_writer<W: Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Writes pretty-printed JSON into `writer`.
///
/// # Errors
///
/// Propagates writer failures.
pub fn to_writer_pretty<W: Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                let s = format!("{v}");
                out.push_str(&s);
                // Keep the token re-parseable as a float.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- deserialization -------------------------------------------------------

/// Parses a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses a `T` from JSON bytes.
///
/// # Errors
///
/// Returns an [`Error`] on invalid UTF-8, malformed JSON, or a shape
/// mismatch.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

/// Reads all of `reader` and parses a `T` from it.
///
/// # Errors
///
/// Returns an [`Error`] on reader failure, malformed JSON, or a shape
/// mismatch.
pub fn from_reader<R: Read, T: serde::Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_slice(&buf)
}

/// Parses JSON text into a raw [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or trailing input.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &[u8]) -> Result<(), Error> {
    if bytes.len() >= *pos + token.len() && &bytes[*pos..*pos + token.len()] == token {
        *pos += token.len();
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {pos}",
            String::from_utf8_lossy(token),
            pos = *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => expect(bytes, pos, b"null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b":")?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b"\"")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair.
                            *pos += 1; // move onto `\`
                            expect(bytes, pos, b"\\u")?;
                            *pos -= 1; // parse_hex4 expects pos on `u`
                            let second = parse_hex4(bytes, pos)?;
                            let combined = 0x10000
                                + ((first - 0xD800) << 10)
                                + (second.wrapping_sub(0xDC00) & 0x3FF);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(first)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the full scalar.
                let s =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|e| Error::new(e.to_string()))?;
                let c = s.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    // `pos` is on the `u`; the four hex digits follow.
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(Error::new("truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[start..end]).map_err(|e| Error::new(e.to_string()))?;
    let v = u32::from_str_radix(hex, 16).map_err(|e| Error::new(e.to_string()))?;
    *pos = end - 1; // leave pos on the final hex digit; caller advances past it
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| Error::new(e.to_string()))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    let number = if is_float {
        Number::Float(text.parse::<f64>().map_err(|e| Error::new(e.to_string()))?)
    } else if let Some(stripped) = text.strip_prefix('-') {
        // Negative integer.
        let _ = stripped;
        Number::NegInt(text.parse::<i64>().map_err(|e| Error::new(e.to_string()))?)
    } else {
        Number::PosInt(text.parse::<u64>().map_err(|e| Error::new(e.to_string()))?)
    };
    Ok(Value::Number(number))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!((from_str::<f64>("1.5e3").unwrap() - 1500.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        let json = to_string_pretty(&m).unwrap();
        assert!(json.contains("\"a\": 1.0"));
        let back: std::collections::BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn float_integers_stay_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
    }
}
