//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset of the rand API this workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`] — backed by
//! xoshiro256** seeded through SplitMix64. Deterministic for a given seed,
//! which is all the synthetic datasets and trainers require; it is NOT the
//! same stream as the real `rand::rngs::StdRng` (ChaCha12), so regenerated
//! datasets differ in content (but not in statistics) from ones made with
//! the real crate.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

// --- Standard impls --------------------------------------------------------

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- SampleRange impls -----------------------------------------------------

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let v = rng.gen_range(1u8..=100);
            assert!((1..=100).contains(&v));
            let v = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
