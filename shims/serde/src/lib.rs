//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and an empty registry, so the
//! workspace vendors a minimal serialization framework under the same crate
//! name. It is value-tree based rather than visitor based: [`Serialize`]
//! lowers a value to a [`Value`], [`Deserialize`] rebuilds it from one, and
//! the sibling `serde_json` crate handles JSON text. The `serde_derive`
//! proc-macro generates impls for plain structs and enums using the same
//! externally-tagged representation real serde defaults to, and honours
//! `#[serde(skip)]`.
//!
//! Only the API surface this workspace uses is provided. If a future PR
//! gains network access, deleting `shims/` and bumping the manifests to the
//! real crates is intended to be a drop-in change.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like number: integers are kept exact, floats are `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

/// An order-preserving string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing any previous value under it.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A keyed object.
    Object(Map),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// "expected X while deserializing T" helper used by generated code.
    pub fn expected(what: &str, ty: &str) -> Self {
        Self(format!("expected {what} while deserializing {ty}"))
    }

    /// Missing-field helper used by generated code.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// Unknown-variant helper used by generated code.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Self(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the tree does not match the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other.kind())),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), "out-of-range number")),
                    other => Err(DeError::expected(stringify!($t), other.kind())),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), "out-of-range number")),
                    other => Err(DeError::expected(stringify!($t), other.kind())),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::expected("f64", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64() as f32),
            other => Err(DeError::expected("f32", other.kind())),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(DeError::expected("single-char string", other.kind())),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.to_string(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other.kind())),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, like a BTreeMap.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.to_string(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other.kind())),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == N => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other.kind())),
                }
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
