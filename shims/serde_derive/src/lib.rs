//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — named-field structs, tuple structs,
//! unit structs, and enums whose variants are unit, tuple, or struct-like —
//! with support for `#[serde(skip)]` on fields. The generated code targets
//! the value-tree traits of the sibling `serde` shim and mirrors real
//! serde's externally-tagged representation, so swapping the real crates
//! back in keeps the JSON wire format compatible.
//!
//! Built on raw `proc_macro` because `syn`/`quote` are unavailable offline:
//! the input item is tokenized by hand, and the impl is emitted as a string
//! that is parsed back into a `TokenStream`. Generics are not supported
//! (none of the workspace's serialized types are generic).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// --- parsing ---------------------------------------------------------------

/// True when the `#[...]` attribute group body is `serde(skip)`.
fn attr_is_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes, reporting whether any was
/// `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool) {
    let mut skip = false;
    while pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        skip |= attr_is_skip(g);
        pos += 2;
    }
    (pos, skip)
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(&tokens[pos..], [TokenTree::Ident(i), ..] if i.to_string() == "pub") {
        pos += 1;
        if matches!(&tokens[pos..], [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }
    pos
}

/// Consumes a type (or any expression-ish run) up to a top-level `,`,
/// tracking `<...>` nesting so commas inside generics do not terminate it.
fn skip_type(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle_depth = 0i32;
    while pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[pos] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        pos += 1;
    }
    pos
}

/// Parses the fields of a `{ ... }` body (named struct or struct variant).
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, skip) = skip_attrs(&tokens, pos);
        pos = skip_visibility(&tokens, next);
        let TokenTree::Ident(name) = &tokens[pos] else {
            return Err(format!("expected field name, found {:?}", tokens[pos]));
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        pos = skip_type(&tokens, pos);
        if pos < tokens.len() {
            pos += 1; // consume `,`
        }
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
    Ok(fields)
}

/// Counts the top-level comma-separated fields of a `( ... )` body.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut arity = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attrs(&tokens, pos);
        pos = skip_visibility(&tokens, next);
        if pos >= tokens.len() {
            break;
        }
        pos = skip_type(&tokens, pos);
        arity += 1;
        if pos < tokens.len() {
            pos += 1; // consume `,`
        }
    }
    arity
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _) = skip_attrs(&tokens, pos);
        pos = next;
        let TokenTree::Ident(name) = &tokens[pos] else {
            return Err(format!("expected variant name, found {:?}", tokens[pos]));
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(other) => return Err(format!("expected `,` after variant, found {other:?}")),
            None => {}
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (next, _) = skip_attrs(&tokens, 0);
    let mut pos = skip_visibility(&tokens, next);
    let kind = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// --- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "m.insert({:?}.to_string(), ::serde::Serialize::to_value(&self.{}));\n",
                    f.name, f.name
                ));
            }
            body.push_str("::serde::Value::Object(m)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "::serde::Value::Array(::std::vec::Vec::new())".to_string(),
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            impl_serialize(name, &body)
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({vn:?}.to_string(), {inner});\n\
                             ::serde::Value::Object(m)\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "fm.insert({:?}.to_string(), ::serde::Serialize::to_value({}));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert({vn:?}.to_string(), ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn named_fields_from_map(ty: &str, fields: &[Field], map_expr: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{name}: match {map_expr}.get({name:?}) {{\n\
                 ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::DeError::missing_field({name:?}, {ty:?})),\n\
                 }},\n",
                name = f.name,
            ));
        }
    }
    inits
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits = named_fields_from_map(name, fields, "obj");
            let body = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            );
            impl_deserialize(name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("::std::result::Result::Ok({name}())"),
                1 => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                n => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                         if items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::expected(\"{n}-element array\", {name:?}));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
            };
            impl_deserialize(name, &body)
        }
        Item::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(arity) => {
                        let build = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "let items = inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                                 if items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::expected(\"{arity}-element array\", {name:?}));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({items}))",
                                items = items.join(", ")
                            )
                        };
                        keyed_arms.push_str(&format!("{vn:?} => {{\n{build}\n}}\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let inits = named_fields_from_map(name, fields, "fobj");
                        keyed_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let fobj = inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, {name:?})),\n\
                 }},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().expect(\"length checked\");\n\
                 match tag {{\n\
                 {keyed_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, {name:?})),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\"enum representation\", other.kind())),\n\
                 }}"
            );
            impl_deserialize(name, &body)
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
