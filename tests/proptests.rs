//! Cross-crate property-based tests (proptest).
//!
//! These pin down the invariants the system's correctness rests on: codec
//! round-trips, container integrity, metric bounds, calibration behaviour,
//! and simulator conservation laws.

use proptest::prelude::*;
use sieve::prelude::*;
use sieve_core::{propagate_labels, Decision, EncodedFrameMeta, FixedSelector};
use sieve_video::bitio::{BitReader, BitWriter};
use sieve_video::{Decoder, EncodedVideo, VideoIndex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exp-Golomb codes round-trip for any sequence of values.
    #[test]
    fn bitio_ue_se_roundtrip(values in proptest::collection::vec((0u64..1 << 40, -5000i64..5000), 1..60)) {
        let mut w = BitWriter::new();
        for &(u, s) in &values {
            w.write_ue(u);
            w.write_se(s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(u, s) in &values {
            prop_assert_eq!(r.read_ue().unwrap(), u);
            prop_assert_eq!(r.read_se().unwrap(), s);
        }
    }

    /// Quantize/dequantize error is bounded by half a quantization step.
    #[test]
    fn quant_error_bounded(quality in 1u8..=100, coeffs in proptest::collection::vec(-900f32..900.0, 64)) {
        let table = sieve_video::QuantTable::luma(quality);
        let arr: [f32; 64] = coeffs.try_into().unwrap();
        let mut levels = [0i32; 64];
        let mut back = [0f32; 64];
        table.quantize(&arr, &mut levels);
        table.dequantize(&levels, &mut back);
        for i in 0..64 {
            prop_assert!((arr[i] - back[i]).abs() <= table.step(i) as f32 / 2.0 + 1e-3);
        }
    }

    /// Any frame encodes to an I-frame that independently decodes with
    /// bounded reconstruction error (PSNR above a floor).
    #[test]
    fn iframe_roundtrip_any_content(seed in 0u64..1000) {
        let res = Resolution::new(48, 32);
        let mut frame = Frame::grey(res);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for v in frame.y_mut().data_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = (state >> 56) as u8;
        }
        let mut enc = Encoder::new(res, EncoderConfig::new(10, 40).with_quality(90));
        let ef = enc.encode_frame(&frame);
        prop_assert_eq!(ef.frame_type, FrameType::I);
        let dec = sieve_video::Decoder::decode_iframe(res, 90, &ef.data).unwrap();
        // Random noise is the worst case for a DCT codec; PSNR floor is low
        // but must hold.
        prop_assert!(frame.psnr_luma(&dec) > 20.0);
    }

    /// Container serialization round-trips and the index agrees with the
    /// in-memory frame types for any GOP structure.
    #[test]
    fn container_roundtrip_any_gop(gop in 1usize..12, frames in 1usize..24) {
        let res = Resolution::new(32, 32);
        let video = EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(gop, 0),
            (0..frames).map(|i| {
                let mut f = Frame::grey(res);
                f.y_mut().put(i % 32, 0, 255);
                f
            }),
        );
        let bytes = video.to_bytes();
        let back = EncodedVideo::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &video);
        let index = VideoIndex::parse(&bytes).unwrap();
        let from_index: Vec<usize> = index.i_frames().map(|(i, _)| i).collect();
        prop_assert_eq!(from_index, video.i_frame_indices());
        // GOP invariant: I-frames at most `gop` apart, starting at 0.
        let i_frames = video.i_frame_indices();
        prop_assert_eq!(i_frames[0], 0);
        for w in i_frames.windows(2) {
            prop_assert!(w[1] - w[0] <= gop);
        }
    }

    /// Propagated labels always match ground truth exactly at the selected
    /// frames, and selection of every frame gives perfect accuracy.
    #[test]
    fn propagation_invariants(labels_bits in proptest::collection::vec(0u8..32, 2..80)) {
        let labels: Vec<LabelSet> = labels_bits.iter().map(|&b| LabelSet::from_bits(b)).collect();
        // Select every frame: perfect accuracy, zero filtering.
        let all: Vec<usize> = (0..labels.len()).collect();
        let q = score_selection(&labels, &all);
        prop_assert!((q.accuracy - 1.0).abs() < 1e-12);
        prop_assert_eq!(q.filtering_rate, 0.0);
        // Any selection: propagated equals truth at selected indices.
        let some: Vec<usize> = (0..labels.len()).step_by(3).collect();
        let pairs: Vec<(usize, LabelSet)> = some.iter().map(|&i| (i, labels[i])).collect();
        let propagated = propagate_labels(labels.len(), &pairs);
        for &i in &some {
            prop_assert_eq!(propagated[i], labels[i]);
        }
        // Metrics stay in [0, 1].
        let q = score_selection(&labels, &some);
        for v in [q.accuracy, q.sampling_rate, q.filtering_rate, q.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Threshold calibration never overshoots: the selected fraction is
    /// within one frame of the closest achievable to the target.
    #[test]
    fn calibration_close_to_target(
        scores in proptest::collection::vec(0f64..1000.0, 10..300),
        target_pct in 1u32..100,
    ) {
        let total = scores.len() + 1;
        let target = target_pct as f64 / 100.0;
        let t = calibrate_threshold(&scores, total, target);
        let picked = select_frames(&scores, t).len();
        let want = ((total as f64 * target).round() as usize).max(1);
        // Ties can force extra inclusions; otherwise exact.
        prop_assert!(picked >= want.min(total) || picked == scores.iter().filter(|&&s| s > t).count() + 1);
        let distinct: std::collections::BTreeSet<u64> = scores.iter().map(|s| s.to_bits()).collect();
        if distinct.len() == scores.len() {
            prop_assert_eq!(picked, want.min(total), "exact without ties");
        }
    }

    /// The tandem-queue pipeline conserves items and never finishes before
    /// the sum of any single item's service times.
    #[test]
    fn pipeline_conservation(
        services in proptest::collection::vec(0.001f64..0.1, 1..40),
    ) {
        use sieve_simnet::{Pipeline, StageSpec, StepWork};
        let mut p = Pipeline::new(vec![
            StageSpec::Compute { name: "a".into() },
            StageSpec::Compute { name: "b".into() },
        ]);
        let mut max_single = 0.0f64;
        let mut sum_a = 0.0f64;
        for &s in &services {
            let r = p.submit(0.0, &[
                StepWork::Compute { secs: s },
                StepWork::Compute { secs: s / 2.0 },
            ]);
            max_single = max_single.max(s + s / 2.0);
            sum_a += s;
            prop_assert!(r.completion >= s + s / 2.0 - 1e-12);
        }
        let rep = p.report();
        prop_assert_eq!(rep.items, services.len() as u64);
        // Makespan at least the busy time of the first stage (it is the
        // entry bottleneck when all items arrive at t=0).
        prop_assert!(rep.makespan_secs >= sum_a - 1e-9);
        prop_assert!(rep.makespan_secs >= max_single - 1e-9);
    }

    /// For every registered selection policy, on random synthetic GOP
    /// structures and budgets, the streaming session's kept indices equal
    /// the batch `select_indices` result exactly — and metadata-only
    /// policies never request pixels, so their sessions hold zero decoded
    /// frames (pixel policies hold at most the previous frame by
    /// construction).
    #[test]
    fn streaming_sessions_equal_batch_selection(
        seed in 0u64..500,
        gop in 2usize..9,
        frames in 4usize..32,
        pct in 5u32..60,
    ) {
        let res = Resolution::new(32, 32);
        let video = EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(gop, 0),
            (0..frames).map(|i| {
                let mut f = Frame::grey(res);
                let phase = (seed % 7) as usize;
                for y in 0..32usize {
                    for x in 0..32usize {
                        f.y_mut().put(x, y, ((x * 3 + y * 5 + i * phase) % 210) as u8);
                    }
                }
                if i.is_multiple_of((seed % 5) as usize + 3) {
                    // Occasional bright box: a content change MSE can see.
                    for y in 8..20usize {
                        for x in 8..20usize {
                            f.y_mut().put(x, y, 250);
                        }
                    }
                }
                f
            }),
        );
        let fraction = pct as f64 / 100.0;
        let selectors: Vec<Box<dyn FrameSelector>> = vec![
            Box::new(IFrameSelector::new()),
            Box::new(UniformSelector::new(gop)),
            Box::new(MseSelector::mse(Budget::Fraction(fraction))),
            Box::new(MseSelector::mse(Budget::Threshold((seed % 90) as f64))),
            Box::new(FixedSelector::new(vec![0, frames / 3, frames - 1])),
        ];
        for mut sel in selectors {
            let name = sel.name();
            let batch = sel.select_indices(&video).expect("batch selection");
            // Drive a session by hand, as a live edge would: one frame at a
            // time, stateful decode, two-phase observe.
            sel.prepare(&video).expect("prepare");
            let mut session = sel.session();
            let metadata_only = !sel.requires_full_decode();
            let mut decoder = Decoder::new(res, video.quality());
            let mut kept = Vec::new();
            for (i, ef) in video.frames().iter().enumerate() {
                if session.done() {
                    break;
                }
                let meta = EncodedFrameMeta::of(ef);
                let frame = decoder.decode_frame(ef).expect("decodes");
                let mut decision = session.observe(i, &meta, None);
                if decision == Decision::NeedsDecode {
                    prop_assert!(
                        !metadata_only,
                        "{name}: metadata-only policy requested pixels"
                    );
                    decision = session.observe(i, &meta, Some(&frame));
                }
                prop_assert!(decision != Decision::NeedsDecode, "{name}: pixels demanded twice");
                if decision == Decision::Keep {
                    kept.push(i);
                }
            }
            session.finish().expect("finish");
            prop_assert_eq!(&kept, &batch, "{} session/batch divergence", name);
        }
    }

    /// The on-line rate controller behind `Budget::TargetRate`: on any
    /// stationary synthetic score stream (a background/spike mixture with
    /// randomized scale, spike height and spike probability), the achieved
    /// sampling rate converges into tolerance of the target with no
    /// offline pass.
    #[test]
    fn adaptive_controller_converges_to_target_rate(
        seed in 0u64..1000,
        target_pct in 5u32..=40,
        scale in 0.5f64..200.0,
        spike in 2.0f64..50.0,
        spike_p in 0.05f64..0.5,
    ) {
        let target = f64::from(target_pct) / 100.0;
        let mut rc = sieve_core::RateController::new(target).expect("valid target");
        let n: u64 = 6000;
        let tail_from = n / 2;
        let mut tail_kept = 0u64;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            // Stationary mixture: uniform background, occasional spikes.
            let score = if u < spike_p { scale * spike * (1.0 + u) } else { scale * u };
            let keep = rc.observe(score);
            if keep && i >= tail_from {
                tail_kept += 1;
            }
        }
        let tail_rate = tail_kept as f64 / (n - tail_from) as f64;
        prop_assert!(
            (tail_rate - target).abs() <= 0.2 * target + 0.01,
            "target {} achieved {} (seed {}, scale {}, spike {}x @ p={})",
            target, tail_rate, seed, scale, spike, spike_p
        );
        // The cumulative rate (what a fleet reports) is in tolerance too.
        prop_assert!(
            (rc.achieved_rate() - target).abs() <= 0.2 * target + 0.01,
            "cumulative rate {} strayed from {}", rc.achieved_rate(), target
        );
    }

    /// Event segmentation partitions any label sequence.
    #[test]
    fn segmentation_partitions(labels_bits in proptest::collection::vec(0u8..32, 0..200)) {
        let labels: Vec<LabelSet> = labels_bits.iter().map(|&b| LabelSet::from_bits(b)).collect();
        let events = segment_events(&labels);
        let total: usize = events.iter().map(|e| e.len).sum();
        prop_assert_eq!(total, labels.len());
        let mut cursor = 0;
        for e in &events {
            prop_assert_eq!(e.start, cursor);
            prop_assert!(e.len > 0);
            for &l in &labels[e.start..e.end()] {
                prop_assert_eq!(l, e.labels);
            }
            cursor = e.end();
        }
    }
}
