//! Failure injection: corrupted bitstreams, malformed containers, and
//! hostile inputs must produce errors (or garbage frames), never panics or
//! undefined behaviour in the decode path.

use sieve::prelude::*;
use sieve_video::{ContainerError, DecodeError, Decoder, EncodedVideo, VideoIndex};

fn sample_video() -> EncodedVideo {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(50, 100),
        video.frames().take(120),
    )
}

#[test]
fn truncation_at_every_boundary_is_graceful() {
    let video = sample_video();
    let bytes = video.to_bytes();
    // Every prefix either parses (and then decodes or errors cleanly) or
    // reports a container error; nothing panics.
    for cut in [0, 3, 4, 10, 20, 21, 100, bytes.len() / 2, bytes.len() - 1] {
        let prefix = &bytes[..cut.min(bytes.len())];
        match VideoIndex::parse(prefix) {
            Ok(index) => {
                // Index parsed but payloads may be truncated.
                for (i, meta) in index.i_frames() {
                    let _ = index.decode_iframe(prefix, meta);
                    let _ = i;
                }
            }
            Err(e) => {
                assert!(matches!(
                    e,
                    ContainerError::BadHeader | ContainerError::Truncated
                ));
            }
        }
    }
}

#[test]
fn bit_flips_in_payload_never_panic() {
    let video = sample_video();
    let mut bytes = video.to_bytes();
    let payload_start = bytes.len() / 2;
    // Flip a spread of bits in the payload region and attempt decodes.
    for k in 0..64 {
        let pos = payload_start + (k * 131) % (bytes.len() - payload_start);
        bytes[pos] ^= 1 << (k % 8);
        if let Ok(corrupt) = EncodedVideo::from_bytes(&bytes) {
            let mut dec = Decoder::new(corrupt.resolution(), corrupt.quality());
            for ef in corrupt.frames() {
                // Either a frame (possibly visually wrong) or a clean error.
                let _ = dec.decode_frame(ef);
            }
        }
        bytes[pos] ^= 1 << (k % 8); // restore
    }
}

#[test]
fn frame_table_corruption_detected() {
    let video = sample_video();
    let mut bytes = video.to_bytes();
    // Corrupt a frame-type byte in the table (offset 21 is the first entry).
    bytes[21] = 0xFF;
    assert_eq!(
        VideoIndex::parse(&bytes).unwrap_err(),
        ContainerError::BadHeader
    );
}

#[test]
fn header_resolution_corruption_detected() {
    let video = sample_video();
    let mut bytes = video.to_bytes();
    // Zero width.
    bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
    assert!(VideoIndex::parse(&bytes).is_err());
}

#[test]
fn wrong_quality_decodes_but_degrades() {
    // A decoder configured with the wrong quantizer quality must still
    // produce frames (the bitstream is syntactically identical), just with
    // wrong sample values — the classic mismatched-decoder behaviour.
    let video = sample_video();
    let first_i = video.i_frame_indices()[0];
    let right = Decoder::decode_iframe(
        video.resolution(),
        video.quality(),
        &video.frames()[first_i].data,
    )
    .expect("decodes");
    let wrong = Decoder::decode_iframe(video.resolution(), 10, &video.frames()[first_i].data)
        .expect("still decodes");
    assert_ne!(right, wrong);
}

#[test]
fn p_frame_payload_as_iframe_is_error_or_garbage() {
    let video = sample_video();
    let p_idx = (0..video.frame_count())
        .find(|&i| video.frames()[i].frame_type == FrameType::P)
        .expect("stream has P-frames");
    // Feeding a P-frame payload to the independent I-frame decoder must not
    // panic; it typically under-runs the bitstream.
    let result = Decoder::decode_iframe(
        video.resolution(),
        video.quality(),
        &video.frames()[p_idx].data,
    );
    if let Err(e) = result {
        assert_eq!(e, DecodeError::Bitstream);
    }
}

#[test]
fn empty_and_hostile_inputs() {
    assert!(VideoIndex::parse(&[]).is_err());
    assert!(VideoIndex::parse(b"SEV1").is_err());
    assert!(EncodedVideo::from_bytes(&[0u8; 64]).is_err());
    // A header claiming u32::MAX frames must not allocate absurdly.
    let mut evil = Vec::new();
    evil.extend_from_slice(b"SEV1");
    evil.extend_from_slice(&32u32.to_le_bytes());
    evil.extend_from_slice(&32u32.to_le_bytes());
    evil.extend_from_slice(&30u32.to_le_bytes());
    evil.push(75);
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        VideoIndex::parse(&evil).unwrap_err(),
        ContainerError::Truncated
    );
}
