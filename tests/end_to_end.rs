//! End-to-end integration tests: the full SiEVE flow across every crate.

use sieve::prelude::*;
use sieve_video::EncodedVideo;

/// The complete offline + online flow on one camera: tune on history, store
/// in the lookup table, encode new video with the tuned parameters, seek
/// I-frames, detect, propagate, and score.
#[test]
fn offline_tune_then_online_analysis() {
    let spec = DatasetSpec::of(DatasetId::JacksonSquare);
    let video = spec.generate(DatasetScale::Tiny);
    let half = video.frame_count() / 2;

    // Offline: tune on the first half.
    let grid = ConfigGrid {
        gop_sizes: vec![300, 600],
        scenecuts: vec![100, 150, 200],
    };
    let outcome = tune(
        video.resolution(),
        video.fps(),
        &grid,
        &video.labels()[..half],
        || (0..half).map(|i| video.frame(i)),
    );
    assert!(outcome.best.quality.f1 > 0.9, "tuning found a good config");

    // Store and reload via the lookup table.
    let mut table = LookupTable::new();
    table.insert("jackson", outcome.best.config);
    let mut buf = Vec::new();
    table.save(&mut buf).expect("save");
    let table = LookupTable::load(buf.as_slice()).expect("load");
    let tuned = table.get_or_default("jackson");

    // Online: encode the unseen second half with the tuned parameters.
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        tuned,
        (half..video.frame_count()).map(|i| video.frame(i)),
    );
    let mut nn = OracleDetector::new(video.labels()[half..].to_vec());
    let result = analyze_sieve(&encoded, &mut nn).expect("analysis");
    let acc = sieve_core::label_accuracy(&video.labels()[half..], &result.predicted);
    assert!(acc > 0.85, "online accuracy too low: {acc}");
    assert!(
        result.sampling_rate() < 0.15,
        "online sampling too high: {}",
        result.sampling_rate()
    );
}

/// The serialized-container path: everything the edge does happens on bytes
/// received over the network, without touching payloads of P-frames.
#[test]
fn byte_stream_flow_matches_in_memory_flow() {
    let spec = DatasetSpec::of(DatasetId::Venice);
    let video = spec.generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames(),
    );
    let bytes = encoded.to_bytes();

    let seeker = sieve_core::ByteStreamSeeker::parse(&bytes).expect("parse");
    assert_eq!(seeker.i_frame_indices(), encoded.i_frame_indices());
    for i in seeker.i_frame_indices() {
        let from_bytes = seeker.decode_at(&bytes, i).expect("decode");
        let from_memory = encoded.decode_iframe_at(i).expect("decode");
        assert_eq!(from_bytes, from_memory);
    }
}

/// SiEVE vs the image-similarity baselines at matched sampling rates: on the
/// jittery close-up dataset SiEVE must not lose to MSE.
#[test]
fn sieve_beats_mse_at_matched_sampling_on_jackson() {
    let spec = DatasetSpec::of(DatasetId::JacksonSquare);
    let video = spec.generate(DatasetScale::Tiny);
    let labels = video.labels();

    // SiEVE's operating point.
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(600, 150),
        video.frames(),
    );
    let selected = IFrameSeeker::new(&encoded).i_frame_indices();
    let sieve_q = score_selection(labels, &selected);

    // MSE calibrated to the same sampling rate on the decoded default
    // stream.
    let default_video = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::x264_default(),
        video.frames(),
    );
    let frames = default_video.decode_all().expect("decode");
    let scores = score_sequence(&mut MseDetector::new(), &frames);
    let t = calibrate_threshold(&scores, frames.len(), sieve_q.sampling_rate.max(1e-6));
    let mse_selected = select_frames(&scores, t);
    let mse_q = score_selection(labels, &mse_selected);

    assert!(
        sieve_q.accuracy >= mse_q.accuracy,
        "SiEVE ({:.3}) must not lose to MSE ({:.3}) at {:.2}% sampling",
        sieve_q.accuracy,
        mse_q.accuracy,
        100.0 * sieve_q.sampling_rate
    );
}

/// A trained CNN plugged into the SiEVE analysis path produces labels close
/// to the oracle's on the I-frames it sees.
#[test]
fn cnn_detector_in_the_analysis_path() {
    let spec = DatasetSpec::of(DatasetId::JacksonSquare);
    let video = spec.generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames(),
    );
    let mut cnn = CnnDetector::train_on(
        &video,
        8,
        &TrainConfig {
            epochs: 5,
            lr: 0.05,
            seed: 5,
        },
    );
    let cnn_result = analyze_sieve(&encoded, &mut cnn).expect("cnn analysis");
    let mut oracle = OracleDetector::for_video(&video);
    let oracle_result = analyze_sieve(&encoded, &mut oracle).expect("oracle analysis");
    assert_eq!(cnn_result.selected.len(), oracle_result.selected.len());
    let agree = cnn_result
        .selected
        .iter()
        .zip(&oracle_result.selected)
        .filter(|((_, a), (_, b))| a == b)
        .count();
    let rate = agree as f64 / cnn_result.selected.len().max(1) as f64;
    assert!(
        rate > 0.5,
        "trained CNN should agree with oracle on most I-frames: {rate}"
    );
}

/// The five end-to-end baselines keep the paper's ordering when the
/// workload comes from real (tiny) encodes and measurements.
#[test]
fn end_to_end_orderings_hold_on_measured_workload() {
    let workloads = vec![sieve_bench_harness_workload()];
    let outcomes = simulate_all(&workloads, &ThreeTier::paper_default());
    let get = |b: Baseline| {
        outcomes
            .iter()
            .find(|o| o.baseline == b)
            .expect("simulated")
    };
    let sieve = get(Baseline::IFrameEdgeCloudNn);
    for o in &outcomes {
        assert!(
            sieve.throughput_fps >= o.throughput_fps,
            "SiEVE 3-tier must win: {} vs {}",
            sieve.throughput_fps,
            o.throughput_fps
        );
    }
    // Bandwidth shape: SiEVE ships far fewer edge->cloud bytes than
    // cloud-only, and MSE ships more than SiEVE.
    let cloud = get(Baseline::IFrameCloudCloudNn);
    let mse = get(Baseline::MseEdgeCloudNn);
    assert!(sieve.edge_cloud_bytes * 3 < cloud.edge_cloud_bytes);
    assert!(mse.edge_cloud_bytes > sieve.edge_cloud_bytes);
}

/// Builds a measured workload from the tiny Jackson dataset (helper; uses
/// the bench harness through the public API).
fn sieve_bench_harness_workload() -> sieve_core::VideoWorkload {
    sieve_bench::harness::build_workload(DatasetId::JacksonSquare, DatasetScale::Tiny, 100_000)
}
