//! Workspace smoke test: the `sieve::prelude` quickstart from `src/lib.rs`,
//! end to end, plus one pass of every selector through the unified
//! analysis layer. If this test runs, the whole workspace wiring —
//! datasets → codec → selectors → NN → metrics — is alive.

use sieve::prelude::*;
use sieve_video::EncodedVideo;

/// Exactly the crate-level doc quickstart.
#[test]
fn prelude_quickstart_runs_end_to_end() {
    // Generate a tiny labelled surveillance feed.
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    // Encode it semantically and analyse only I-frames.
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 200),
        video.frames(),
    );
    let mut nn = OracleDetector::for_video(&video);
    let result = analyze_sieve(&encoded, &mut nn).unwrap();
    assert!(result.sampling_rate() < 0.2);

    // And the quality numbers the README quotes hold.
    let quality = score_encoding(&encoded, video.labels());
    assert!(quality.accuracy > 0.8, "accuracy {}", quality.accuracy);
    assert!(quality.f1 > 0.8, "f1 {}", quality.f1);
}

/// Every selection policy flows through the one generic driver.
#[test]
fn all_selectors_flow_through_unified_layer() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 200),
        video.frames().take(300),
    );
    let budget = encoded.i_frame_indices().len().max(1);
    let fraction = (budget as f64 / encoded.frame_count() as f64).clamp(1e-3, 1.0);

    let mut selectors: Vec<Box<dyn FrameSelector>> = vec![
        Box::new(IFrameSelector::new()),
        Box::new(UniformSelector::matching_count(
            encoded.frame_count(),
            budget,
        )),
        Box::new(MseSelector::mse(Budget::Fraction(fraction))),
        Box::new(SiftSelector::sift(Budget::Fraction(fraction))),
    ];
    for selector in &mut selectors {
        let mut nn = OracleDetector::for_video(&video);
        let name = selector.name();
        let result =
            analyze(&encoded, selector, &mut nn).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(!result.selected.is_empty(), "{name} selected nothing");
        assert_eq!(result.predicted.len(), encoded.frame_count());
        // Selected tuples carry the detector's labels at their own frames.
        for &(i, labels) in &result.selected {
            assert_eq!(labels, video.labels()[i], "{name} tuple at {i}");
        }
    }
}

/// The five simulated baselines all route through the generic
/// selector/deployment registry.
#[test]
fn baseline_registry_covers_all_five() {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    for b in Baseline::ALL {
        let spec: BaselineSpec = b.spec();
        assert!(seen.insert(spec), "duplicate registry row for {b}");
        assert_eq!(
            spec.selector.uses_semantic_encoding(),
            b.uses_semantic_encoding()
        );
    }
    assert_eq!(seen.len(), 5);
}
