//! Integration test: the *live* threaded 3-tier pipeline carrying real
//! encoded frames through select → WAN → detect, end to end, via the
//! generic `run_live_analysis` driver — with selection decisions made
//! *inside* the edge stage by a streaming `SelectorSession`.

use sieve::prelude::*;
use sieve_core::{SelectorCost, SelectorSession};
use sieve_video::{EncodedFrame, EncodedVideo};

#[test]
fn live_three_tier_pipeline_detects_events() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames(),
    );
    let expected_i = encoded.i_frame_indices().len();

    let mut selector = IFrameSelector::new();
    let oracle = OracleDetector::for_video(&video);
    let live = run_live_analysis(
        &encoded,
        &mut selector,
        oracle,
        &LiveConfig {
            wan_bps: 50.0e6,
            capacity: 8,
            ..LiveConfig::default()
        },
    )
    .expect("live run");

    assert_eq!(live.report.delivered as usize, expected_i);
    assert_eq!(
        live.report.dropped as usize,
        encoded.frame_count() - expected_i
    );
    assert_eq!(live.report.failed, 0, "healthy stream: no decode failures");

    // The tuples collected in the cloud reconstruct accurate per-frame
    // labels via propagation.
    let acc = sieve_core::label_accuracy(video.labels(), &live.result.predicted);
    assert!(acc > 0.9, "live pipeline accuracy too low: {acc}");
}

/// The same driver carries a full-decode baseline: an MSE edge selects at a
/// matched budget and the tuples still reconstruct labels.
#[test]
fn live_pipeline_generic_over_selectors() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames().take(240),
    );
    let fraction = (encoded.i_frame_indices().len().max(1) as f64 / encoded.frame_count() as f64)
        .clamp(0.01, 1.0);
    let mut selector = MseSelector::mse(Budget::Fraction(fraction));
    let oracle = OracleDetector::for_video(&video);
    let live = run_live_analysis(&encoded, &mut selector, oracle, &LiveConfig::default())
        .expect("live run");
    assert!(live.report.delivered > 0, "mse must select something");
    assert_eq!(
        live.result.predicted.len(),
        encoded.frame_count(),
        "propagation covers every frame"
    );
    // Selected tuples carry ground truth at their own frames.
    for &(i, labels) in &live.result.selected {
        assert_eq!(labels, video.labels()[i]);
    }
}

/// The live driver streams: it must never evaluate the policy with a batch
/// whole-video call. A selector whose batch entry points panic — only its
/// session works — completes a live run and matches the offline result.
#[test]
fn live_driver_never_batch_selects() {
    struct SessionOnly;
    impl FrameSelector for SessionOnly {
        fn name(&self) -> &'static str {
            "session-only"
        }
        fn requires_full_decode(&self) -> bool {
            false
        }
        fn cost_model(&self) -> SelectorCost {
            SelectorCost::metadata_seek()
        }
        fn session(&self) -> Box<dyn SelectorSession> {
            IFrameSelector::new().session()
        }
        fn select(
            &mut self,
            _video: &EncodedVideo,
        ) -> Result<Vec<(usize, sieve_video::Frame)>, SieveError> {
            panic!("live driver materialised a whole-video selection");
        }
        fn select_indices(&mut self, _video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
            panic!("live driver materialised the full index vector");
        }
    }

    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames(),
    );
    let oracle = OracleDetector::for_video(&video);
    let live = run_live_analysis(
        &encoded,
        &mut SessionOnly,
        oracle.clone(),
        &LiveConfig::default(),
    )
    .expect("session-based live run");
    let mut oracle = oracle;
    let offline = analyze(&encoded, &mut IFrameSelector::new(), &mut oracle).expect("offline");
    assert_eq!(
        live.result, offline,
        "streamed decisions match batch policy"
    );
}

/// Edge-stage decode failures surface as the typed `LiveReport::failed`
/// counter, distinct from policy drops.
#[test]
fn edge_decode_failures_are_typed() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(100, 0),
        video.frames().take(300),
    );
    let i_frames = encoded.i_frame_indices();
    assert!(
        i_frames.len() >= 2,
        "need at least two I-frames to corrupt one"
    );

    // Truncate the payload of the second I-frame: the session keeps it by
    // metadata, but the edge decode must fail in a typed way.
    let corrupt_at = i_frames[1];
    let mut corrupted = EncodedVideo::new(encoded.resolution(), encoded.fps(), encoded.quality());
    for (i, ef) in encoded.frames().iter().enumerate() {
        corrupted.push(EncodedFrame {
            frame_type: ef.frame_type,
            data: if i == corrupt_at {
                Vec::new()
            } else {
                ef.data.clone()
            },
        });
    }

    let oracle = OracleDetector::for_video(&video);
    let mut selector = IFrameSelector::new();
    let live = run_live_analysis(&corrupted, &mut selector, oracle, &LiveConfig::default())
        .expect("live run");
    assert_eq!(live.report.failed, 1, "exactly the corrupted frame fails");
    assert_eq!(
        live.report.delivered as usize,
        i_frames.len() - 1,
        "the other I-frames still flow"
    );
    assert_eq!(
        live.report.dropped as usize,
        corrupted.frame_count() - i_frames.len(),
        "policy drops exclude the failure"
    );
    let ids: Vec<usize> = live.result.selected.iter().map(|&(i, _)| i).collect();
    assert!(!ids.contains(&corrupt_at), "failed frame yields no tuple");
}

#[test]
fn live_pipeline_backpressure_does_not_deadlock() {
    // Tiny channel capacity with a slow middle stage: must still drain.
    let items: Vec<sieve_simnet::LiveItem> = (0..100)
        .map(|id| sieve_simnet::LiveItem {
            id,
            payload: vec![0u8; 64],
            tag: 0,
        })
        .collect();
    let slow = sieve_simnet::LiveStage::compute("slow", |it: sieve_simnet::LiveItem| {
        std::thread::sleep(std::time::Duration::from_micros(200));
        sieve_simnet::StageResult::Emit(it)
    });
    let fast = sieve_simnet::LiveStage::compute("fast", sieve_simnet::StageResult::Emit);
    let report = sieve_simnet::run_live(vec![fast, slow], items, 1);
    assert_eq!(report.delivered, 100);
}
