//! Integration test: the *live* threaded 3-tier pipeline carrying real
//! encoded frames through select → WAN → detect, end to end, via the
//! generic `run_live_analysis` driver.

use sieve::prelude::*;
use sieve_video::EncodedVideo;

#[test]
fn live_three_tier_pipeline_detects_events() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames(),
    );
    let expected_i = encoded.i_frame_indices().len();

    let mut selector = IFrameSelector::new();
    let oracle = OracleDetector::for_video(&video);
    let live = run_live_analysis(
        &encoded,
        &mut selector,
        oracle,
        &LiveConfig {
            wan_bps: 50.0e6,
            capacity: 8,
            ..LiveConfig::default()
        },
    )
    .expect("live run");

    assert_eq!(live.report.delivered as usize, expected_i);
    assert_eq!(
        live.report.dropped as usize,
        encoded.frame_count() - expected_i
    );

    // The tuples collected in the cloud reconstruct accurate per-frame
    // labels via propagation.
    let acc = sieve_core::label_accuracy(video.labels(), &live.result.predicted);
    assert!(acc > 0.9, "live pipeline accuracy too low: {acc}");
}

/// The same driver carries a full-decode baseline: an MSE edge selects at a
/// matched budget and the tuples still reconstruct labels.
#[test]
fn live_pipeline_generic_over_selectors() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames().take(240),
    );
    let fraction = (encoded.i_frame_indices().len().max(1) as f64 / encoded.frame_count() as f64)
        .clamp(0.01, 1.0);
    let mut selector = MseSelector::mse(Budget::Fraction(fraction));
    let oracle = OracleDetector::for_video(&video);
    let live = run_live_analysis(&encoded, &mut selector, oracle, &LiveConfig::default())
        .expect("live run");
    assert!(live.report.delivered > 0, "mse must select something");
    assert_eq!(
        live.result.predicted.len(),
        encoded.frame_count(),
        "propagation covers every frame"
    );
    // Selected tuples carry ground truth at their own frames.
    for &(i, labels) in &live.result.selected {
        assert_eq!(labels, video.labels()[i]);
    }
}

#[test]
fn live_pipeline_backpressure_does_not_deadlock() {
    // Tiny channel capacity with a slow middle stage: must still drain.
    let items: Vec<sieve_simnet::LiveItem> = (0..100)
        .map(|id| sieve_simnet::LiveItem {
            id,
            payload: vec![0u8; 64],
            tag: 0,
        })
        .collect();
    let slow = sieve_simnet::LiveStage::compute("slow", |it: sieve_simnet::LiveItem| {
        std::thread::sleep(std::time::Duration::from_micros(200));
        Some(it)
    });
    let fast = sieve_simnet::LiveStage::compute("fast", Some);
    let report = sieve_simnet::run_live(vec![fast, slow], items, 1);
    assert_eq!(report.delivered, 100);
}
