//! Integration test: the *live* threaded 3-tier pipeline carrying real
//! encoded frames through seek → WAN → detect, end to end.

use std::sync::{Arc, Mutex};

use sieve::prelude::*;
use sieve_video::{Decoder, EncodedVideo};

#[test]
fn live_three_tier_pipeline_detects_events() {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(300, 150),
        video.frames(),
    );
    let res = encoded.resolution();
    let quality = encoded.quality();
    let expected_i = encoded.i_frame_indices().len();
    let labels = Arc::new(video.labels().to_vec());
    let results: Arc<Mutex<Vec<(u64, LabelSet)>>> = Arc::default();

    // Edge: filter P-frames by metadata, decode I-frames.
    let edge = LiveStage::compute("edge", move |item: LiveItem| {
        if item.tag != 0 {
            return None;
        }
        let frame = Decoder::decode_iframe(res, quality, &item.payload).expect("decode");
        let small = frame.resize(Resolution::new(32, 32));
        Some(LiveItem {
            id: item.id,
            payload: small.y().data().to_vec(),
            tag: 0,
        })
    });
    // A shaped WAN.
    let wan = LiveStage::link("wan", 50.0e6);
    // Cloud: oracle "NN" keyed by frame id (ground truth stands in for a
    // correct detector, as in the paper's accuracy model).
    let cloud = {
        let labels = labels.clone();
        let results = results.clone();
        LiveStage::compute("cloud", move |item: LiveItem| {
            let l = labels
                .get(item.id as usize)
                .copied()
                .unwrap_or_default();
            results.lock().unwrap().push((item.id, l));
            Some(item)
        })
    };

    let items: Vec<LiveItem> = encoded
        .frames()
        .iter()
        .enumerate()
        .map(|(i, ef)| LiveItem {
            id: i as u64,
            payload: ef.data.clone(),
            tag: match ef.frame_type {
                FrameType::I => 0,
                FrameType::P => 1,
            },
        })
        .collect();

    let report = sieve_simnet::run_live(vec![edge, wan, cloud], items, 8);
    assert_eq!(report.delivered as usize, expected_i);
    assert_eq!(report.dropped as usize, encoded.frame_count() - expected_i);

    // The tuples collected in the cloud reconstruct accurate per-frame
    // labels via propagation.
    let mut collected = results.lock().unwrap().clone();
    collected.sort_by_key(|(id, _)| *id);
    let pairs: Vec<(usize, LabelSet)> = collected
        .into_iter()
        .map(|(id, l)| (id as usize, l))
        .collect();
    let predicted = sieve_core::propagate_labels(encoded.frame_count(), &pairs);
    let acc = sieve_core::label_accuracy(video.labels(), &predicted);
    assert!(acc > 0.9, "live pipeline accuracy too low: {acc}");
}

#[test]
fn live_pipeline_backpressure_does_not_deadlock() {
    // Tiny channel capacity with a slow middle stage: must still drain.
    let items: Vec<LiveItem> = (0..100)
        .map(|id| LiveItem {
            id,
            payload: vec![0u8; 64],
            tag: 0,
        })
        .collect();
    let slow = LiveStage::compute("slow", |it: LiveItem| {
        std::thread::sleep(std::time::Duration::from_micros(200));
        Some(it)
    });
    let fast = LiveStage::compute("fast", Some);
    let report = sieve_simnet::run_live(vec![fast, slow], items, 1);
    assert_eq!(report.delivered, 100);
}
